//! Readers and writers for corpus files.
//!
//! Two formats are supported:
//!
//! * The UCI "bag of words" `docword` format used by the NYTimes and PubMed
//!   datasets of the paper: a header of three lines (`D`, `V`, `NNZ`) followed
//!   by `docID wordID count` triples (all 1-based).
//! * A plain-text format: one document per line, whitespace-separated tokens,
//!   lower-cased, with everything except ASCII alphanumerics stripped — the
//!   same pre-processing the paper applies to ClueWeb12.
//!
//! Binary persistence (model checkpoints, vocabulary snapshots) lives in the
//! [`codec`] submodule; crash-safe file replacement (temp + fsync + rename,
//! with scripted write-fault injection) lives in [`atomic`].

pub mod atomic;
pub mod codec;

pub use atomic::{atomic_write, atomic_write_bytes};

use std::io::{BufRead, BufReader, Read, Write};

use crate::{Corpus, CorpusBuilder, CorpusError, Document, Vocabulary, WordId};

/// Reads a corpus in the UCI `docword` bag-of-words format.
///
/// The vocabulary is synthetic (`w0`, `w1`, …) unless `vocab` is supplied from
/// a matching `vocab.*.txt` file via [`read_uci_vocab`].
pub fn read_uci_bag_of_words<R: Read>(
    reader: R,
    vocab: Option<Vocabulary>,
) -> Result<Corpus, CorpusError> {
    let mut lines = BufReader::new(reader).lines();
    let mut next_header = |line_no: usize| -> Result<usize, CorpusError> {
        let line = lines
            .next()
            .ok_or(CorpusError::Empty("missing header line"))?
            .map_err(CorpusError::Io)?;
        line.trim().parse::<usize>().map_err(|_| CorpusError::Parse {
            line: line_no,
            message: format!("expected integer header, got {line:?}"),
        })
    };
    let num_docs = next_header(1)?;
    let vocab_size = next_header(2)?;
    let _nnz = next_header(3)?;

    let vocab = match vocab {
        Some(v) => {
            if v.len() < vocab_size {
                return Err(CorpusError::Parse {
                    line: 2,
                    message: format!(
                        "provided vocabulary has {} words but header declares {vocab_size}",
                        v.len()
                    ),
                });
            }
            v
        }
        None => Vocabulary::synthetic(vocab_size),
    };

    let mut docs: Vec<Vec<(WordId, u32)>> = vec![Vec::new(); num_docs];
    for (i, line) in lines.enumerate() {
        let line_no = i + 4;
        let line = line.map_err(CorpusError::Io)?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_field = |s: Option<&str>, what: &str| -> Result<u64, CorpusError> {
            s.and_then(|v| v.parse::<u64>().ok()).ok_or_else(|| CorpusError::Parse {
                line: line_no,
                message: format!("expected {what} on triple line {trimmed:?}"),
            })
        };
        let doc = parse_field(parts.next(), "docID")?;
        let word = parse_field(parts.next(), "wordID")?;
        let count = parse_field(parts.next(), "count")?;
        if doc == 0 || doc as usize > num_docs {
            return Err(CorpusError::DocOutOfRange { doc: doc as u32, num_docs });
        }
        if word == 0 || word as usize > vocab_size {
            return Err(CorpusError::WordOutOfRange { word: word as u32, vocab_size });
        }
        docs[(doc - 1) as usize].push(((word - 1) as WordId, count as u32));
    }

    let docs: Vec<Document> = docs.into_iter().map(Document::from_counts).collect();
    Corpus::from_parts(docs, vocab)
}

/// Reads the UCI `vocab.*.txt` companion file: one word per line, in id order.
pub fn read_uci_vocab<R: Read>(reader: R) -> Result<Vocabulary, CorpusError> {
    let mut vocab = Vocabulary::new();
    for line in BufReader::new(reader).lines() {
        let line = line.map_err(CorpusError::Io)?;
        let w = line.trim();
        if !w.is_empty() {
            vocab.intern(w);
        }
    }
    Ok(vocab)
}

/// Writes a corpus in the UCI `docword` format (1-based ids, one triple per
/// distinct `(doc, word)` pair).
pub fn write_uci_bag_of_words<W: Write>(corpus: &Corpus, mut writer: W) -> Result<(), CorpusError> {
    let mut triples: Vec<(u32, u32, u32)> = Vec::new();
    for (d, doc) in corpus.iter() {
        let mut counts = std::collections::BTreeMap::new();
        for &w in doc.tokens() {
            *counts.entry(w).or_insert(0u32) += 1;
        }
        for (w, c) in counts {
            triples.push((d + 1, w + 1, c));
        }
    }
    writeln!(writer, "{}", corpus.num_docs())?;
    writeln!(writer, "{}", corpus.vocab_size())?;
    writeln!(writer, "{}", triples.len())?;
    for (d, w, c) in triples {
        writeln!(writer, "{d} {w} {c}")?;
    }
    Ok(())
}

/// Normalizes raw text the way the paper pre-processes ClueWeb12: keep ASCII
/// alphanumerics, lower-case, split on whitespace and drop stop words.
pub fn tokenize_text(text: &str, stop_words: &[&str]) -> Vec<String> {
    let cleaned: String = text
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { ' ' })
        .collect();
    cleaned.split_whitespace().filter(|t| !stop_words.contains(t)).map(str::to_owned).collect()
}

/// What to do with query words that are not in the frozen vocabulary.
///
/// A serving vocabulary is frozen at model-freeze time, so unseen documents
/// routinely contain words the model has never assigned topics to. The two
/// policies of every production LDA deployment:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OovPolicy {
    /// Silently drop out-of-vocabulary words and report how many were
    /// dropped. The default: an unseen word carries no topic information
    /// under a frozen model, so skipping it is the statistically honest
    /// treatment.
    #[default]
    Skip,
    /// Reject the whole query with [`CorpusError::UnknownWord`]. For callers
    /// that would rather surface a vocabulary mismatch (e.g. a stale client
    /// querying a re-trained model) than degrade silently.
    Reject,
}

/// Tokenizes a raw-text query against a *frozen* [`Vocabulary`], applying the
/// same normalization as [`tokenize_text`] (ASCII-alphanumeric, lower-cased,
/// whitespace-split; stop words are assumed to simply be absent from the
/// vocabulary). Known words are appended to `out` as ids; out-of-vocabulary
/// words follow `policy`. Returns the number of OOV words dropped.
///
/// `scratch` stages the normalized text; both buffers are cleared first and
/// reused across calls, so a caller holding onto them (the query server's
/// workers do) tokenizes without heap allocation once they have grown to the
/// largest query seen.
pub fn tokenize_query_into(
    vocab: &Vocabulary,
    text: &str,
    policy: OovPolicy,
    scratch: &mut String,
    out: &mut Vec<WordId>,
) -> Result<usize, CorpusError> {
    scratch.clear();
    scratch.extend(text.chars().map(|c| {
        if c.is_ascii_alphanumeric() {
            c.to_ascii_lowercase()
        } else {
            ' '
        }
    }));
    out.clear();
    let mut oov = 0usize;
    for token in scratch.split_whitespace() {
        match vocab.get(token) {
            Some(id) => out.push(id),
            None => match policy {
                OovPolicy::Skip => oov += 1,
                OovPolicy::Reject => {
                    return Err(CorpusError::UnknownWord { word: token.to_owned() })
                }
            },
        }
    }
    Ok(oov)
}

/// A small default English stop-word list.
pub const DEFAULT_STOP_WORDS: &[&str] = &[
    "a", "an", "the", "and", "or", "of", "to", "in", "is", "it", "for", "on", "with", "as", "by",
    "at", "be", "this", "that", "from", "are", "was", "were", "but", "not", "have", "has", "had",
];

/// Reads a plain-text corpus: one document per line.
pub fn read_plain_text<R: Read>(reader: R, stop_words: &[&str]) -> Result<Corpus, CorpusError> {
    let mut builder = CorpusBuilder::new();
    for line in BufReader::new(reader).lines() {
        let line = line.map_err(CorpusError::Io)?;
        let tokens = tokenize_text(&line, stop_words);
        if !tokens.is_empty() {
            builder.push_text_doc(tokens.iter().map(String::as_str));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "3\n4\n5\n1 1 2\n1 3 1\n2 2 1\n3 4 3\n3 1 1\n";

    #[test]
    fn uci_round_trip() {
        let corpus = read_uci_bag_of_words(SAMPLE.as_bytes(), None).unwrap();
        assert_eq!(corpus.num_docs(), 3);
        assert_eq!(corpus.vocab_size(), 4);
        assert_eq!(corpus.num_tokens(), 2 + 1 + 1 + 3 + 1);
        let mut out = Vec::new();
        write_uci_bag_of_words(&corpus, &mut out).unwrap();
        let reread = read_uci_bag_of_words(out.as_slice(), None).unwrap();
        assert_eq!(reread.num_docs(), corpus.num_docs());
        assert_eq!(reread.num_tokens(), corpus.num_tokens());
        assert_eq!(reread.term_frequencies(), corpus.term_frequencies());
    }

    #[test]
    fn uci_rejects_out_of_range_ids() {
        let bad_doc = "1\n2\n1\n5 1 1\n";
        assert!(matches!(
            read_uci_bag_of_words(bad_doc.as_bytes(), None),
            Err(CorpusError::DocOutOfRange { .. })
        ));
        let bad_word = "1\n2\n1\n1 7 1\n";
        assert!(matches!(
            read_uci_bag_of_words(bad_word.as_bytes(), None),
            Err(CorpusError::WordOutOfRange { .. })
        ));
    }

    #[test]
    fn uci_rejects_garbage_header() {
        let bad = "three\n2\n1\n";
        assert!(matches!(
            read_uci_bag_of_words(bad.as_bytes(), None),
            Err(CorpusError::Parse { .. })
        ));
    }

    #[test]
    fn uci_with_explicit_vocab() {
        let vocab_txt = "alpha\nbeta\ngamma\ndelta\n";
        let vocab = read_uci_vocab(vocab_txt.as_bytes()).unwrap();
        let corpus = read_uci_bag_of_words(SAMPLE.as_bytes(), Some(vocab)).unwrap();
        assert_eq!(corpus.vocab().word(0), Some("alpha"));
        assert_eq!(corpus.vocab().word(3), Some("delta"));
    }

    #[test]
    fn uci_rejects_too_small_vocab() {
        let vocab = read_uci_vocab("only\none\n".as_bytes()).unwrap();
        assert!(read_uci_bag_of_words(SAMPLE.as_bytes(), Some(vocab)).is_err());
    }

    #[test]
    fn tokenizer_strips_punctuation_and_stop_words() {
        let toks =
            tokenize_text("The QUICK, brown fox; jumps over the lazy dog!", DEFAULT_STOP_WORDS);
        assert_eq!(toks, vec!["quick", "brown", "fox", "jumps", "over", "lazy", "dog"]);
    }

    #[test]
    fn tokenizer_keeps_digits() {
        let toks = tokenize_text("LDA-2016 scales to 11G tokens", &[]);
        assert_eq!(toks, vec!["lda", "2016", "scales", "to", "11g", "tokens"]);
    }

    #[test]
    fn query_tokenizer_maps_known_words_and_applies_policy() {
        let mut vocab = Vocabulary::new();
        for w in ["apple", "iphone", "ios"] {
            vocab.intern(w);
        }
        let mut scratch = String::new();
        let mut ids = Vec::new();
        // Skip policy: unknown words are counted, known ones mapped in order,
        // with the same normalization as the corpus reader.
        let oov = tokenize_query_into(
            &vocab,
            "APPLE's iPhone beats Android!",
            OovPolicy::Skip,
            &mut scratch,
            &mut ids,
        )
        .unwrap();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(oov, 3, "\"s\", \"beats\" and \"android\" are out of vocabulary");
        // Reject policy: the first unknown word fails the whole query.
        let err =
            tokenize_query_into(&vocab, "ios android", OovPolicy::Reject, &mut scratch, &mut ids)
                .unwrap_err();
        assert!(matches!(err, CorpusError::UnknownWord { ref word } if word == "android"), "{err}");
        // Buffers are reused: an all-known query after the error is clean.
        let oov =
            tokenize_query_into(&vocab, "ios ios apple", OovPolicy::Reject, &mut scratch, &mut ids)
                .unwrap();
        assert_eq!(oov, 0);
        assert_eq!(ids, vec![2, 2, 0]);
    }

    #[test]
    fn plain_text_reader_builds_documents() {
        let text = "apple iphone ios\nandroid phone\n\napple orange fruit\n";
        let corpus = read_plain_text(text.as_bytes(), &[]).unwrap();
        assert_eq!(corpus.num_docs(), 3);
        assert_eq!(corpus.vocab().get("apple"), Some(0));
        assert_eq!(corpus.num_tokens(), 8);
    }
}
