//! Dataset presets mirroring Table 3 of the paper at laptop scale.
//!
//! Each preset preserves the *shape* of the original dataset — the mean
//! document length `T/D`, the ratio of vocabulary size to document count and
//! the Zipfian skew — while scaling the absolute size down so the experiments
//! run on a single machine in seconds to minutes. The scale factor is recorded
//! so EXPERIMENTS.md can report both the preset and the original.

use crate::synth::{LdaGenerator, SyntheticConfig};
use crate::Corpus;

/// A named dataset preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetPreset {
    /// NYTimes-like: 300K docs, 100M tokens, 102K vocab, T/D ≈ 332 in the
    /// paper; scaled to 3K docs here.
    NyTimesLike,
    /// PubMed-like: 8.2M docs, 738M tokens, 141K vocab, T/D ≈ 90 in the paper;
    /// scaled to 20K docs here.
    PubMedLike,
    /// ClueWeb12-subset-like: 38M docs, 14B tokens, 1M vocab, T/D ≈ 367 in the
    /// paper; scaled to 10K docs here.
    ClueWebSubsetLike,
    /// A tiny smoke-test corpus for unit/integration tests and examples.
    Tiny,
}

impl DatasetPreset {
    /// All presets, in Table 3 order.
    pub const ALL: [DatasetPreset; 4] = [
        DatasetPreset::NyTimesLike,
        DatasetPreset::PubMedLike,
        DatasetPreset::ClueWebSubsetLike,
        DatasetPreset::Tiny,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetPreset::NyTimesLike => "NYTimes-like",
            DatasetPreset::PubMedLike => "PubMed-like",
            DatasetPreset::ClueWebSubsetLike => "ClueWeb12-subset-like",
            DatasetPreset::Tiny => "Tiny",
        }
    }

    /// The statistics of the original dataset from Table 3 of the paper:
    /// `(D, T, V, T/D)`. `Tiny` has no original.
    pub fn paper_stats(&self) -> Option<(u64, u64, u64, f64)> {
        match self {
            DatasetPreset::NyTimesLike => Some((300_000, 100_000_000, 102_000, 332.0)),
            DatasetPreset::PubMedLike => Some((8_200_000, 738_000_000, 141_000, 90.0)),
            DatasetPreset::ClueWebSubsetLike => {
                Some((38_000_000, 14_000_000_000, 1_000_000, 367.0))
            }
            DatasetPreset::Tiny => None,
        }
    }

    /// The synthetic configuration of the scaled preset.
    pub fn config(&self) -> SyntheticConfig {
        match self {
            DatasetPreset::NyTimesLike => SyntheticConfig {
                num_docs: 3_000,
                vocab_size: 8_000,
                mean_doc_len: 332,
                num_topics: 50,
                alpha: 0.5,
                beta: 0.05,
                zipf_exponent: 1.05,
                seed: 1001,
            },
            DatasetPreset::PubMedLike => SyntheticConfig {
                num_docs: 20_000,
                vocab_size: 12_000,
                mean_doc_len: 90,
                num_topics: 80,
                alpha: 0.5,
                beta: 0.05,
                zipf_exponent: 1.05,
                seed: 1002,
            },
            DatasetPreset::ClueWebSubsetLike => SyntheticConfig {
                num_docs: 10_000,
                vocab_size: 30_000,
                mean_doc_len: 367,
                num_topics: 100,
                alpha: 0.5,
                beta: 0.05,
                zipf_exponent: 1.1,
                seed: 1003,
            },
            DatasetPreset::Tiny => SyntheticConfig {
                num_docs: 200,
                vocab_size: 500,
                mean_doc_len: 40,
                num_topics: 10,
                alpha: 0.5,
                beta: 0.1,
                zipf_exponent: 1.0,
                seed: 1004,
            },
        }
    }

    /// Generates the preset corpus (deterministic).
    pub fn generate(&self) -> Corpus {
        LdaGenerator::new(self.config()).generate()
    }

    /// Generates a reduced-size variant of the preset (e.g. for quick smoke
    /// runs): document count divided by `factor`, vocabulary kept.
    pub fn generate_scaled(&self, factor: usize) -> Corpus {
        let mut cfg = self.config();
        cfg.num_docs = (cfg.num_docs / factor.max(1)).max(10);
        LdaGenerator::new(cfg).generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            DatasetPreset::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), DatasetPreset::ALL.len());
    }

    #[test]
    fn tiny_preset_generates_quickly_with_right_shape() {
        let c = DatasetPreset::Tiny.generate();
        let s = c.stats();
        assert_eq!(s.num_docs, 200);
        assert_eq!(s.vocab_size, 500);
        assert!((s.mean_doc_len - 40.0).abs() < 12.0);
    }

    #[test]
    fn paper_stats_match_table3() {
        let (d, t, v, td) = DatasetPreset::NyTimesLike.paper_stats().unwrap();
        assert_eq!(d, 300_000);
        assert_eq!(t, 100_000_000);
        assert_eq!(v, 102_000);
        assert!((td - 332.0).abs() < 1.0);
        assert!(DatasetPreset::Tiny.paper_stats().is_none());
    }

    #[test]
    fn scaled_generation_reduces_docs() {
        let c = DatasetPreset::Tiny.generate_scaled(10);
        assert_eq!(c.num_docs(), 20);
    }

    #[test]
    fn preserved_mean_doc_len_ratio() {
        // The preset keeps T/D close to the paper's value even though D shrinks.
        let cfg = DatasetPreset::PubMedLike.config();
        let (_, _, _, td) = DatasetPreset::PubMedLike.paper_stats().unwrap();
        assert!((cfg.mean_doc_len as f64 - td).abs() / td < 0.05);
    }
}
