//! Corpus handling for the WarpLDA reproduction.
//!
//! This crate provides everything the samplers need to know about the input
//! data:
//!
//! * [`Vocabulary`] — a bidirectional word ⇄ id mapping.
//! * [`Document`] and [`Corpus`] — a bag-of-words corpus stored as token id
//!   sequences, together with summary statistics ([`CorpusStats`], the data
//!   behind Table 3 of the paper).
//! * [`views`] — document-major and word-major token views (the `Zd` / `Zw`
//!   orderings of Section 4.1 of the paper); these are the structures the
//!   samplers iterate over.
//! * [`io`] — readers and writers for the UCI "bag of words" `docword` format
//!   used by the NYTimes and PubMed datasets, plus a whitespace tokenizer for
//!   raw text.
//! * [`synth`] — synthetic corpus generators: an LDA generative-model
//!   generator (planted topics) and a Zipfian unigram generator, used when the
//!   paper's corpora are not available locally.
//! * [`presets`] — scaled-down presets mimicking the shape (D, V, T/D) of the
//!   NYTimes, PubMed and ClueWeb12 corpora from Table 3.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod document;
pub mod error;
pub mod io;
pub mod presets;
pub mod stats;
pub mod synth;
pub mod views;
pub mod vocab;

pub use crate::corpus::{Corpus, CorpusBuilder};
pub use document::Document;
pub use error::CorpusError;
pub use io::{tokenize_query_into, OovPolicy};
pub use presets::DatasetPreset;
pub use stats::CorpusStats;
pub use synth::{LdaGenerator, SyntheticConfig, ZipfGenerator};
pub use views::{DocMajorView, TokenRef, WordMajorView};
pub use vocab::Vocabulary;

/// Identifier of a word in the vocabulary (a *word*, not an occurrence).
pub type WordId = u32;
/// Identifier of a document.
pub type DocId = u32;
/// Identifier of a topic.
pub type TopicId = u32;
