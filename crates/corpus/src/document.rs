//! A single bag-of-words document.

use crate::WordId;

/// A document is an ordered list of token occurrences (word ids).
///
/// LDA is a bag-of-words model, so the order of tokens carries no meaning;
/// we keep a flat `Vec<WordId>` because the samplers assign one latent topic
/// per *occurrence* (Section 2.1 of the paper distinguishes words from
/// tokens: "apple" is a word, each of its occurrences is a token).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Document {
    tokens: Vec<WordId>,
}

impl Document {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a document from a list of token occurrences.
    pub fn from_tokens(tokens: Vec<WordId>) -> Self {
        Self { tokens }
    }

    /// Creates a document from `(word, count)` pairs, expanding counts into
    /// individual token occurrences (the UCI bag-of-words representation).
    pub fn from_counts<I: IntoIterator<Item = (WordId, u32)>>(counts: I) -> Self {
        let mut tokens = Vec::new();
        for (w, c) in counts {
            for _ in 0..c {
                tokens.push(w);
            }
        }
        Self { tokens }
    }

    /// Number of token occurrences (`L_d` in the paper).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` when the document has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The token occurrences.
    pub fn tokens(&self) -> &[WordId] {
        &self.tokens
    }

    /// Appends a token occurrence.
    pub fn push(&mut self, word: WordId) {
        self.tokens.push(word);
    }

    /// Number of *distinct* words in the document.
    pub fn distinct_words(&self) -> usize {
        let mut sorted: Vec<WordId> = self.tokens.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }
}

impl FromIterator<WordId> for Document {
    fn from_iter<T: IntoIterator<Item = WordId>>(iter: T) -> Self {
        Self { tokens: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_expands_occurrences() {
        let d = Document::from_counts(vec![(3, 2), (7, 1), (3, 1)]);
        assert_eq!(d.tokens(), &[3, 3, 7, 3]);
        assert_eq!(d.len(), 4);
        assert_eq!(d.distinct_words(), 2);
    }

    #[test]
    fn empty_document() {
        let d = Document::new();
        assert!(d.is_empty());
        assert_eq!(d.distinct_words(), 0);
    }

    #[test]
    fn push_and_collect() {
        let mut d = Document::new();
        d.push(1);
        d.push(1);
        d.push(2);
        assert_eq!(d.len(), 3);
        let d2: Document = vec![1u32, 1, 2].into_iter().collect();
        assert_eq!(d, d2);
    }

    #[test]
    fn zero_count_words_are_skipped() {
        let d = Document::from_counts(vec![(5, 0), (6, 2)]);
        assert_eq!(d.tokens(), &[6, 6]);
    }
}
