//! Sequence helpers.

use crate::{Rng, RngCore};

/// In-place random permutation of slices.
pub trait SliceRandom {
    /// Shuffles the slice uniformly (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn shuffle_of_empty_and_singleton_is_noop() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut empty: [u32; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [7u32];
        one.shuffle(&mut rng);
        assert_eq!(one, [7]);
    }
}
