//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step; used to expand a `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, high-quality non-cryptographic generator: xoshiro256++
/// (the algorithm behind `rand` 0.8's 64-bit `SmallRng`).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl SmallRng {
    /// Returns the raw xoshiro256++ state, e.g. for checkpointing a run.
    ///
    /// Restoring the same words via [`from_state`](Self::from_state) resumes
    /// the stream exactly where it left off, which is what makes
    /// save/load/continue runs bit-identical to uninterrupted ones.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state previously read with
    /// [`state`](Self::state).
    ///
    /// The all-zero state is a fixed point of xoshiro256++ and is remapped to
    /// the same non-zero constant [`seed_from_u64`](SeedableRng::seed_from_u64)
    /// uses, so a `from_state` generator never degenerates.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            return Self { s: [0x9E37_79B9_7F4A_7C15, 0, 0, 0] };
        }
        Self { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
