//! A minimal, dependency-free stand-in for the crates.io `rand` crate.
//!
//! The build environment for this workspace has no access to a package
//! registry, so the handful of `rand` 0.8 APIs the workspace actually uses are
//! reimplemented here and wired in as a path dependency:
//!
//! * [`rngs::SmallRng`] — xoshiro256++, the same algorithm `rand` 0.8 uses for
//!   its 64-bit `SmallRng`, seeded from a `u64` via SplitMix64;
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] for the primitive
//!   types the samplers draw (`f64`, unsigned/signed integers, `bool`);
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism is part of the workspace contract (every experiment takes an
//! explicit seed), so all generators here are pure functions of their seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words; every generator implements this.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (taken from the high half of
    /// [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from their "standard" distribution:
/// `[0, 1)` for floats, the full value range for integers, a fair coin for
/// `bool`.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample values of type `T` from.
///
/// Parameterizing by `T` (rather than using an associated type) mirrors the
/// real crate and is what lets untyped integer literals in a range infer their
/// type from the call site, e.g. `let addr: u64 = rng.gen_range(0..1 << 24);`.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire-style scaling; the bias is < 2^-64 per draw, far below
                // anything the statistical tests in this workspace can resolve.
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// The user-facing extension trait: every [`RngCore`] gets these methods.
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T` (see [`Standard`]).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = SmallRng::seed_from_u64(9);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn all_zero_state_is_remapped() {
        let mut z = SmallRng::from_state([0; 4]);
        let first = z.next_u64();
        let second = z.next_u64();
        assert!(first != 0 || second != 0, "the zero fixed point must be avoided");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_are_in_half_open_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_uniform_enough() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut hist = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            hist[rng.gen_range(0usize..10)] += 1;
        }
        for &h in &hist {
            let rate = h as f64 / n as f64;
            assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
        }
    }

    #[test]
    fn gen_range_handles_signed_and_float_ranges() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.25f64..1.75);
            assert!((0.25..1.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 100_000;
        let heads = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = heads as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(8);
        let _ = rng.gen_range(5usize..5);
    }
}
