//! Offline stand-in for the `serde` crate.
//!
//! The workspace annotates its data structures with serde derives so a future
//! PR can enable real (de)serialization without touching every struct, but
//! this build environment cannot reach a package registry. This crate provides
//! the two names the annotations need — `Serialize` and `Deserialize` — as
//! marker traits in the type namespace and as no-op derive macros in the macro
//! namespace (mirroring how the real crate re-exports `serde_derive`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
