//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses crossbeam's scoped threads
//! (`crossbeam::thread::scope` + `Scope::spawn`), which std has provided
//! natively since Rust 1.63. This shim adapts `std::thread::scope` to the
//! crossbeam 0.8 calling convention the samplers were written against:
//!
//! * `scope` returns a `Result` (the callers `.expect(...)` it);
//! * spawned closures receive a `&Scope` argument so nested spawns are
//!   possible.
//!
//! One behavioral difference: when a spawned thread panics, std's scope
//! re-raises the panic at the end of the scope instead of returning `Err`.
//! Every call site in this workspace treats a worker panic as fatal, so the
//! difference is unobservable apart from the panic message.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 API shape.

    use std::any::Any;

    /// Error half of the [`scope`] result; kept for signature compatibility.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A handle for spawning scoped threads; a shallow wrapper over
    /// [`std::thread::Scope`].
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> Result<T, ScopeError> {
            self.inner.join()
        }
    }

    /// Creates a scope in which threads borrowing local data can be spawned;
    /// all spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_mutate_disjoint_slices() {
        let mut data = vec![0u32; 8];
        let (left, right) = data.split_at_mut(4);
        thread::scope(|scope| {
            scope.spawn(move |_| left.iter_mut().for_each(|v| *v += 1));
            scope.spawn(move |_| right.iter_mut().for_each(|v| *v += 2));
        })
        .expect("workers panicked");
        assert_eq!(data, [1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn join_returns_thread_result() {
        let out = thread::scope(|scope| {
            let h = scope.spawn(|_| 21 * 2);
            h.join().expect("thread panicked")
        })
        .expect("scope failed");
        assert_eq!(out, 42);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .expect("workers panicked");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
