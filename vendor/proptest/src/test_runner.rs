//! Runner configuration and per-case outcomes.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded and retried.
    Reject(&'static str),
    /// `prop_assert!` (or a relative) failed; the whole test fails.
    Fail(String),
}
