//! Value-generation strategies.

use std::ops::Range;

/// A deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for one case from the test's identity and the case
    /// number, so every run of the suite generates the same inputs.
    pub fn for_case(test_id: &str, case: u64) -> Self {
        // FNV-1a over the test id, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `0..bound` (`bound` must be positive).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Something that can generate values of an associated type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit() as $t * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_deterministic_per_test_and_case() {
        let a = TestRng::for_case("m::t", 1).next_u64();
        let b = TestRng::for_case("m::t", 1).next_u64();
        let c = TestRng::for_case("m::t", 2).next_u64();
        let d = TestRng::for_case("m::other", 1).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn range_strategies_cover_their_domain() {
        let mut rng = TestRng::for_case("cover", 0);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[(3usize..10).generate(&mut rng) - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
