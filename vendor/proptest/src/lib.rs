//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x surface this workspace's
//! property tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, range and tuple strategies, `prop::collection::vec` and
//! `prop::bool::ANY`.
//!
//! Differences from the real crate, acceptable for this workspace's use:
//!
//! * cases are generated from a deterministic per-test seed (derived from the
//!   test's module path and name), so failures reproduce exactly on re-run;
//! * failing inputs are reported but **not shrunk**;
//! * `prop_assume!` rejections simply retry with the next case, with a global
//!   retry cap so a test that rejects everything still terminates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop` namespace (`prop::collection::vec`, `prop::bool::ANY`, ...).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr;
     $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config = $cfg;
                let mut accepted: u32 = 0;
                let mut attempt: u64 = 0;
                let max_attempts = config.cases as u64 * 16;
                while accepted < config.cases {
                    attempt += 1;
                    assert!(
                        attempt <= max_attempts,
                        "too many prop_assume! rejections ({} accepted of {} wanted after {} attempts)",
                        accepted, config.cases, max_attempts,
                    );
                    let mut __rng = $crate::strategy::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempt,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property test {} failed on case #{}: {}",
                                stringify!($name), attempt, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
        );
    }};
}

/// Discards the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(pairs in prop::collection::vec((0u32..9, prop::bool::ANY), 0..40)) {
            prop_assert!(pairs.len() < 40);
            for (n, _flag) in pairs {
                prop_assert!(n < 9);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_header_is_honored(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }

    proptest! {
        #[test]
        fn assume_retries_instead_of_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn prop_assert_produces_fail_and_assume_produces_reject() {
        let failing: Result<(), TestCaseError> = (|| {
            prop_assert!(1 == 2, "one is not {}", 2);
            Ok(())
        })();
        match failing {
            Err(TestCaseError::Fail(msg)) => assert_eq!(msg, "one is not 2"),
            other => panic!("expected Fail, got {other:?}"),
        }

        let rejected: Result<(), TestCaseError> = (|| {
            prop_assume!(false);
            Ok(())
        })();
        assert!(matches!(rejected, Err(TestCaseError::Reject(_))));
    }
}
