//! Offline stand-in for the `criterion` crate.
//!
//! Supports the API subset used by `crates/bench/benches/micro.rs`: benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, per-group and
//! global `sample_size`, the builder knobs `warm_up_time` / `measurement_time`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is timed for
//! `sample_size` batches inside the configured measurement window and the
//! mean/min batch time per iteration is printed. That is enough to compare
//! the workspace's data-structure and sampler variants against each other on
//! one machine, which is all the micro suite is for.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up window run before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window shared by the samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup { criterion: self, name, sample_size: None }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (warm, measure, samples) = (self.warm_up_time, self.measurement_time, self.sample_size);
        run_one(&id.to_string(), warm, measure, samples, &mut f);
        self
    }
}

/// A set of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is already done per benchmark).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark: function name + parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { function: function.into(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    batch_iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `inner`, running it enough times to fill the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut inner: F) {
        let start = Instant::now();
        for _ in 0..self.batch_iters {
            black_box(inner());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    f: &mut F,
) {
    // Warm-up: run single batches until the warm-up window has passed, and use
    // the observed speed to size the measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut b = Bencher { batch_iters: 1, elapsed: Duration::ZERO };
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let budget = measurement.as_secs_f64() / samples as f64;
    let batch_iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut bencher = Bencher { batch_iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        total += bencher.elapsed;
        best = best.min(bencher.elapsed);
    }
    let iters = batch_iters as f64;
    println!(
        "bench {label:<50} mean {:>12.1} ns/iter   min {:>12.1} ns/iter   ({samples} samples x {batch_iters} iters)",
        total.as_nanos() as f64 / samples as f64 / iters,
        best.as_nanos() as f64 / iters,
    );
}

/// Declares a group of benchmark functions, optionally with a custom
/// configuration, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3)
    }

    #[test]
    fn groups_and_inputs_run_their_closures() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box("s".len())));
    }

    criterion_group! {
        name = macro_benches;
        config = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .sample_size(2);
        targets = target_a
    }

    fn target_a(c: &mut Criterion) {
        c.bench_function("macro-target", |b| b.iter(|| black_box(3 * 3)));
    }

    #[test]
    fn macro_declared_group_runs() {
        macro_benches();
    }
}
