//! Offline stand-in for the `mio` crate: a readiness event loop over `poll(2)`.
//!
//! The query server (`warplda-serve`) needs one thread to watch thousands of
//! sockets for readiness — the `mio` use case — but the workspace has no
//! registry access, so this shim covers the small API subset the server
//! consumes, layered directly on the platform's `poll(2)` (declared via
//! `extern "C"` against the C library Rust already links; no `libc` crate):
//!
//! * [`Poll`] — owns the registration table ([`register`](Poll::register) /
//!   [`reregister`](Poll::reregister) / [`deregister`](Poll::deregister) by
//!   raw fd) and blocks in [`poll`](Poll::poll) until a registered fd is
//!   ready or the timeout elapses.
//! * [`Interest`] — readable/writable interest flags, composable with `|`.
//! * [`Events`] / [`Event`] — the readiness results of one `poll` call; an
//!   event carries its registration [`Token`] and the readable/writable/
//!   closed/error facts.
//! * [`Waker`] — cross-thread wakeup via a self-pipe (a nonblocking
//!   `UnixStream` pair whose read end is registered like any socket);
//!   [`wake`](Waker::wake) is safe to call from any thread and coalesces.
//!
//! Differences from real mio, chosen for simplicity at the server's scale:
//! registration is by [`RawFd`](std::os::unix::io::RawFd) (any `AsRawFd`
//! source; mio's `event::Source` trait is not reproduced), the backend is
//! `poll(2)` rather than epoll — O(registered fds) per call, perfectly fine
//! for the few thousand connections a single serve node holds — and
//! registrations are level-triggered only (which is what the server's
//! buffer-draining loops want).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg(unix)]

use std::collections::HashMap;
use std::io::{Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

// --------------------------------------------------------------------------
// poll(2) FFI
// --------------------------------------------------------------------------

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

extern "C" {
    /// `poll(2)`; present in the C library every Rust binary on unix links.
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

// --------------------------------------------------------------------------
// Tokens and interest
// --------------------------------------------------------------------------

/// Identifies a registration; returned with every readiness event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both (`READABLE | WRITABLE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Whether this interest includes read readiness.
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Whether this interest includes write readiness.
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }

    fn to_poll_events(self) -> i16 {
        let mut ev = 0;
        if self.is_readable() {
            ev |= POLLIN;
        }
        if self.is_writable() {
            ev |= POLLOUT;
        }
        ev
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

// --------------------------------------------------------------------------
// Events
// --------------------------------------------------------------------------

/// One fd's readiness, as reported by [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    revents: i16,
}

impl Event {
    /// The [`Token`] the fd was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Read readiness (includes hangup: a closed peer is readable-to-EOF).
    pub fn is_readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Write readiness (includes error conditions, so a failed connection
    /// surfaces through the write path instead of hanging).
    pub fn is_writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR) != 0
    }

    /// The peer hung up or the fd is in an error state.
    pub fn is_closed(&self) -> bool {
        self.revents & (POLLHUP | POLLERR | POLLNVAL) != 0
    }
}

/// Reusable container for the readiness results of one [`Poll::poll`] call.
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// A container; `capacity` only pre-sizes the vector (poll(2) has no
    /// kernel-side event cap, unlike epoll).
    pub fn with_capacity(capacity: usize) -> Self {
        Self { inner: Vec::with_capacity(capacity) }
    }

    /// Iterates over the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Whether the last poll returned no events (pure timeout).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

// --------------------------------------------------------------------------
// Poll
// --------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Registry {
    /// fd → (token, interest); rebuilt into a pollfd array per poll call.
    entries: HashMap<RawFd, (Token, Interest)>,
}

/// The readiness selector: a registration table plus `poll(2)`.
#[derive(Debug)]
pub struct Poll {
    registry: Arc<Mutex<Registry>>,
    /// Scratch pollfd array, reused across calls.
    pollfds: Vec<PollFd>,
}

impl Poll {
    /// A new, empty selector.
    pub fn new() -> std::io::Result<Self> {
        Ok(Self { registry: Arc::new(Mutex::new(Registry::default())), pollfds: Vec::new() })
    }

    /// Registers `source` under `token` with `interest`. Registering an
    /// already-registered fd is an error (use [`reregister`](Self::reregister)).
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> std::io::Result<()> {
        let fd = source.as_raw_fd();
        let mut reg = self.registry.lock().expect("registry poisoned");
        if reg.entries.contains_key(&fd) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        reg.entries.insert(fd, (token, interest));
        Ok(())
    }

    /// Replaces the token/interest of an already-registered fd.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> std::io::Result<()> {
        let fd = source.as_raw_fd();
        let mut reg = self.registry.lock().expect("registry poisoned");
        match reg.entries.get_mut(&fd) {
            Some(slot) => {
                *slot = (token, interest);
                Ok(())
            }
            None => Err(std::io::Error::new(std::io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    /// Removes an fd from the selector.
    pub fn deregister(&self, source: &impl AsRawFd) -> std::io::Result<()> {
        let fd = source.as_raw_fd();
        let mut reg = self.registry.lock().expect("registry poisoned");
        match reg.entries.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(std::io::Error::new(std::io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout` elapses
    /// (`None` blocks indefinitely), filling `events` with the results.
    /// Retries transparently on `EINTR`.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> std::io::Result<()> {
        events.inner.clear();
        self.pollfds.clear();
        {
            let reg = self.registry.lock().expect("registry poisoned");
            for (&fd, &(_, interest)) in &reg.entries {
                self.pollfds.push(PollFd { fd, events: interest.to_poll_events(), revents: 0 });
            }
        }
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 1ns timeout still sleeps ~1ms instead of spinning.
            Some(d) => d.as_millis().min(i32::MAX as u128).max(u128::from(!d.is_zero())) as i32,
        };
        let n = loop {
            let rc =
                unsafe { poll(self.pollfds.as_mut_ptr(), self.pollfds.len() as u64, timeout_ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        if n > 0 {
            let reg = self.registry.lock().expect("registry poisoned");
            for pfd in &self.pollfds {
                if pfd.revents != 0 {
                    if let Some(&(token, _)) = reg.entries.get(&pfd.fd) {
                        events.inner.push(Event { token, revents: pfd.revents });
                    }
                }
            }
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Waker
// --------------------------------------------------------------------------

/// Wakes a [`Poll`] from another thread, via a self-pipe registered like any
/// other fd: [`wake`](Waker::wake) writes one byte to the pipe, making the
/// registered read end readable; the event loop calls
/// [`drain`](Waker::drain) when it sees the waker's token.
#[derive(Debug)]
pub struct Waker {
    /// Write end; `&UnixStream: Write`, so waking needs no lock.
    tx: UnixStream,
    /// Read end, registered with the poll; drained on wakeup.
    rx: UnixStream,
}

impl Waker {
    /// Creates the self-pipe and registers its read end under `token`.
    pub fn new(poll: &Poll, token: Token) -> std::io::Result<Self> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        poll.register(&rx, token, Interest::READABLE)?;
        Ok(Self { tx, rx })
    }

    /// Makes the poll's next (or current) wait return. Coalesces: a full pipe
    /// means a wakeup is already pending, which is success.
    pub fn wake(&self) -> std::io::Result<()> {
        match (&self.tx).write(&[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consumes pending wakeup bytes; call when the waker's token polls
    /// readable, before processing whatever the wakeup announced.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poll_reports_listener_readable_on_pending_accept() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poll = Poll::new().unwrap();
        poll.register(&listener, Token(7), Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing pending: a short poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().next().expect("listener readable");
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());
    }

    #[test]
    fn interest_controls_which_readiness_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.set_nonblocking(true).unwrap();

        let mut poll = Poll::new().unwrap();
        // A fresh socket with an empty send buffer is writable, not readable.
        poll.register(&server, Token(1), Interest::WRITABLE).unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(1) && e.is_writable()));

        // Reregistered for reads only: quiet until the peer writes.
        poll.reregister(&server, Token(2), Interest::READABLE).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
        (&client).write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(2) && e.is_readable()));

        // Deregistered: silence even with data pending.
        poll.deregister(&server).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
        assert!(poll.deregister(&server).is_err(), "double deregister is a typed error");
    }

    #[test]
    fn peer_hangup_is_readable_and_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut poll = Poll::new().unwrap();
        poll.register(&server, Token(3), Interest::READABLE).unwrap();
        drop(client);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().find(|e| e.token() == Token(3)).expect("hangup event");
        assert!(ev.is_readable(), "EOF must be delivered through a read");
    }

    #[test]
    fn waker_wakes_an_indefinite_poll_from_another_thread() {
        let mut poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new(&poll, Token(0)).unwrap());
        let mut events = Events::with_capacity(8);

        let w = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake().unwrap();
        });
        // Blocks until the other thread wakes us (no timeout).
        poll.poll(&mut events, None).unwrap();
        t.join().unwrap();
        let ev = events.iter().next().expect("waker event");
        assert_eq!(ev.token(), Token(0));
        waker.drain();

        // Coalescing: many wakes, one drain, then quiet.
        for _ in 0..100 {
            waker.wake().unwrap();
        }
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(!events.is_empty());
        waker.drain();
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "drained waker must not re-report");
    }
}
