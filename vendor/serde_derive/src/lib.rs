//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace's structs carry serde derives so that a future PR can turn on
//! real serialization, but the offline build environment has no crates.io
//! access. These derives accept the same syntax (including `#[serde(...)]`
//! attributes) and expand to nothing, so annotated types compile unchanged.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
