//! Property-based tests (proptest) on the core data structures and on the
//! sampler invariants listed in DESIGN.md §7.

use proptest::prelude::*;

use warplda::cachesim::{MemoryProbe, NoProbe};
use warplda::lda::counts::{DenseCounts, HashCounts, TopicCounts};
use warplda::prelude::*;
use warplda::sampling::{new_rng, AliasBuildScratch, AliasTable, FTree, SparseAliasTable};
use warplda::sparse::{imbalance_index, partition_by_size, TokenMatrix};

// ---------------------------------------------------------------------------
// Alias table: empirical frequencies match the target distribution.
// ---------------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn alias_table_matches_weights(weights in prop::collection::vec(0.0f64..10.0, 1..30), seed in 0u64..1000) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 1e-6);
        let table = AliasTable::new(&weights);
        let mut rng = new_rng(seed);
        let draws = 30_000;
        let mut counts = vec![0u32; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / draws as f64;
            prop_assert!((observed - expected).abs() < 0.05,
                "outcome {}: observed {} expected {}", i, observed, expected);
            if w == 0.0 {
                prop_assert_eq!(counts[i], 0, "zero-weight outcome sampled");
            }
        }
    }

    #[test]
    fn sparse_alias_rebuild_matches_fresh_build(
        tables in prop::collection::vec(
            prop::collection::vec((0u32..500, 0.0f64..10.0), 1..40), 1..6),
        seed in 0u64..1000,
    ) {
        // Rebuilding one table in place across a sequence of differently
        // sized distributions (the WarpLDA word-phase pattern) must draw
        // exactly what a freshly constructed table draws.
        let mut scratch = AliasBuildScratch::new();
        let mut reused = SparseAliasTable::with_capacity(1);
        for entries in &tables {
            reused.rebuild(entries, &mut scratch);
            let fresh = SparseAliasTable::new(entries);
            prop_assert_eq!(reused.len(), fresh.len());
            prop_assert_eq!(reused.total_weight().to_bits(), fresh.total_weight().to_bits());
            let mut r1 = new_rng(seed);
            let mut r2 = new_rng(seed);
            for _ in 0..500 {
                prop_assert_eq!(reused.sample(&mut r1), fresh.sample(&mut r2));
            }
        }
    }

    #[test]
    fn alias_probabilities_reconstruct_weights(weights in prop::collection::vec(0.0f64..5.0, 1..50)) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 1e-6);
        let table = AliasTable::new(&weights);
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            let p = table.probability(i);
            prop_assert!((p - w / total).abs() < 1e-9);
            acc += p;
        }
        prop_assert!((acc - 1.0).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// F+ tree: totals and prefix sums always equal the naive computation, under
// arbitrary sequences of point updates.
// ---------------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ftree_tracks_naive_sums(
        initial in prop::collection::vec(0.0f64..10.0, 1..40),
        updates in prop::collection::vec((0usize..40, 0.0f64..10.0), 0..60),
    ) {
        let mut tree = FTree::new(&initial);
        let mut naive = initial.clone();
        for (idx, value) in updates {
            let idx = idx % naive.len();
            tree.set(idx, value);
            naive[idx] = value;
        }
        let naive_total: f64 = naive.iter().sum();
        prop_assert!((tree.total() - naive_total).abs() < 1e-9);
        let mut acc = 0.0;
        for (i, &v) in naive.iter().enumerate() {
            acc += v;
            prop_assert!((tree.prefix_sum(i) - acc).abs() < 1e-9);
            prop_assert!((tree.weight(i) - v).abs() < 1e-12);
        }
    }
}

// ---------------------------------------------------------------------------
// Count vectors behave like a reference HashMap model.
// ---------------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_vectors_match_reference(ops in prop::collection::vec((0u32..200, prop::bool::ANY), 0..400)) {
        let mut hash = HashCounts::with_expected(8, 100_000);
        let mut dense = DenseCounts::new(200);
        let mut reference = std::collections::HashMap::<u32, u32>::new();
        for (topic, inc) in ops {
            if inc {
                hash.increment(topic);
                dense.increment(topic);
                *reference.entry(topic).or_default() += 1;
            } else if reference.get(&topic).copied().unwrap_or(0) > 0 {
                hash.decrement(topic);
                dense.decrement(topic);
                *reference.get_mut(&topic).unwrap() -= 1;
            }
        }
        let expected_total: u64 = reference.values().map(|&v| v as u64).sum();
        prop_assert_eq!(hash.total(), expected_total);
        prop_assert_eq!(dense.total(), expected_total);
        for (&topic, &count) in &reference {
            prop_assert_eq!(hash.get(topic), count);
            prop_assert_eq!(dense.get(topic), count);
        }
        let nonzero = reference.values().filter(|&&v| v > 0).count();
        prop_assert_eq!(hash.num_nonzero(), nonzero);
        prop_assert_eq!(dense.num_nonzero(), nonzero);
    }
}

// ---------------------------------------------------------------------------
// TokenMatrix: row and column views are consistent permutations of the same
// entries for arbitrary sparsity patterns.
// ---------------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn token_matrix_views_are_consistent(entries in prop::collection::vec((0u32..20, 0u32..15), 0..200)) {
        let mut m: TokenMatrix<u32> = TokenMatrix::from_entries(20, 15, &entries);
        prop_assert_eq!(m.num_entries(), entries.len());
        // Stamp unique ids via rows, check via columns.
        let mut counter = 0u32;
        m.visit_by_row(|_, mut row| {
            for i in 0..row.len() {
                *row.get_mut(i) = counter;
                counter += 1;
            }
        });
        let mut seen = vec![false; entries.len()];
        m.visit_by_column(|w, col| {
            for i in 0..col.len() {
                let v = *col.get(i) as usize;
                assert!(!seen[v]);
                seen[v] = true;
                // Column w must actually contain an entry (row, w).
                assert!(entries.iter().any(|&(r, c)| c == w && r == col.row(i)));
            }
        });
        prop_assert!(seen.iter().all(|&s| s));
        // Row/column lengths add up.
        let row_total: usize = (0..20u32).map(|d| m.row_len(d)).sum();
        let col_total: usize = (0..15u32).map(|w| m.col_len(w)).sum();
        prop_assert_eq!(row_total, entries.len());
        prop_assert_eq!(col_total, entries.len());
    }
}

// ---------------------------------------------------------------------------
// Partitioning: every strategy covers every item exactly once and the greedy
// imbalance is never worse than the static one by more than noise.
// ---------------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partitioners_cover_all_items(sizes in prop::collection::vec(0u64..1000, 1..300), parts in 1usize..16) {
        for strategy in [PartitionStrategy::Static { seed: 7 }, PartitionStrategy::Dynamic, PartitionStrategy::Greedy] {
            let assignment = partition_by_size(&sizes, parts, strategy);
            prop_assert_eq!(assignment.len(), sizes.len());
            prop_assert!(assignment.iter().all(|&p| (p as usize) < parts));
            let mut loads = vec![0u64; parts];
            for (i, &p) in assignment.iter().enumerate() {
                loads[p as usize] += sizes[i];
            }
            prop_assert_eq!(loads.iter().sum::<u64>(), sizes.iter().sum::<u64>());
            prop_assert!(imbalance_index(&loads) >= 0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Cache probe: hit + miss accounting always balances.
// ---------------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cache_hierarchy_accounting_balances(addresses in prop::collection::vec(0u64..1_000_000, 1..2000)) {
        let mut probe = CacheProbe::new(HierarchyConfig::tiny_for_tests());
        let region = probe.register_region("r", 1_000_000, 1);
        for &a in &addresses {
            probe.read(region, a as usize);
        }
        let s = probe.stats();
        prop_assert_eq!(s.accesses as usize, addresses.len());
        prop_assert_eq!(s.l1_hits + s.l2_hits + s.l3_hits + s.memory_accesses, s.accesses);
        prop_assert!(s.mean_latency_cycles() >= 5.0);
        prop_assert!(s.mean_latency_cycles() <= 180.0);
    }
}

// ---------------------------------------------------------------------------
// WarpLDA invariants: after every iteration the assignments are in range, the
// global topic counts sum to the token count, and they match a recount.
// ---------------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn warplda_count_invariants(seed in 0u64..500, k in 2usize..20, m in 1usize..4) {
        let corpus = DatasetPreset::Tiny.generate_scaled(10);
        let params = ModelParams::new(k, 0.5, 0.1);
        let mut sampler = WarpLda::new(&corpus, params, WarpLdaConfig { mh_steps: m, use_hash_counts: true }, seed);
        for _ in 0..2 {
            sampler.run_iteration();
            let z = sampler.assignments();
            prop_assert_eq!(z.len() as u64, corpus.num_tokens());
            prop_assert!(z.iter().all(|&t| (t as usize) < k));
            let mut hist = vec![0u32; k];
            for &t in &z {
                hist[t as usize] += 1;
            }
            prop_assert_eq!(sampler.topic_counts(), &hist[..]);
        }
    }
}

// ---------------------------------------------------------------------------
// Distributed protocol: delta/sync messages survive an encode/decode roundtrip
// bit-for-bit, for arbitrary payload contents.
// ---------------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dist_delta_messages_roundtrip(
        worker_id in 0u32..64,
        epoch in 0u64..10_000,
        records in prop::collection::vec(0u32..1000, 0..200),
        partial_ck in prop::collection::vec(0u32..100_000, 0..64),
        word in prop::bool::ANY,
    ) {
        use warplda::dist::protocol::{decode_message, encode_message, Delta, Message};

        let delta = Delta { worker_id, epoch, records, partial_ck };
        let msg = if word {
            Message::WordDelta(delta.clone())
        } else {
            Message::DocDelta(delta.clone())
        };
        let decoded = decode_message(&encode_message(&msg)).expect("roundtrip decodes");
        let back = match (word, decoded) {
            (true, Message::WordDelta(d)) | (false, Message::DocDelta(d)) => d,
            (_, other) => return Err(TestCaseError::Fail(format!("wrong variant: {other:?}"))),
        };
        prop_assert_eq!(back.worker_id, delta.worker_id);
        prop_assert_eq!(back.epoch, delta.epoch);
        prop_assert_eq!(back.records, delta.records);
        prop_assert_eq!(back.partial_ck, delta.partial_ck);
    }

    #[test]
    fn dist_sync_messages_roundtrip(
        epoch in 0u64..10_000,
        topic_counts in prop::collection::vec(0u32..1_000_000, 0..64),
        records in prop::collection::vec(0u32..1000, 0..200),
    ) {
        use warplda::dist::protocol::{decode_message, encode_message, Message, Sync};

        let sync = Sync { epoch, topic_counts, records };
        let decoded = decode_message(&encode_message(&Message::WordSync(sync.clone())))
            .expect("roundtrip decodes");
        match decoded {
            Message::WordSync(back) => {
                prop_assert_eq!(back.epoch, sync.epoch);
                prop_assert_eq!(back.topic_counts, sync.topic_counts);
                prop_assert_eq!(back.records, sync.records);
            }
            other => return Err(TestCaseError::Fail(format!("wrong variant: {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Grid shard assignment: for arbitrary corpora and worker counts, every
// matrix entry is owned by exactly one worker in each phase and the owned
// shards cover the whole corpus.
// ---------------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grid_shards_partition_every_token(
        docs in prop::collection::vec(prop::collection::vec(0u32..40, 1..30), 1..40),
        workers in 1usize..6,
    ) {
        let corpus = Corpus::from_token_docs(docs);
        let doc_view = DocMajorView::build(&corpus);
        let word_view = WordMajorView::build(&corpus, &doc_view);
        let grid = GridPartition::build_with(
            &corpus,
            &doc_view,
            &word_view,
            workers,
            PartitionStrategy::Greedy,
            PartitionStrategy::Dynamic,
        );
        prop_assert_eq!(grid.total_tokens(), corpus.num_tokens());
        for d in 0..corpus.num_docs() as u32 {
            prop_assert!((grid.doc_owner(d) as usize) < workers);
        }
        for w in 0..corpus.vocab().len() as u32 {
            prop_assert!((grid.word_owner(w) as usize) < workers);
        }

        // Ownership through the exchange plan: in each phase the per-worker
        // delta entry lists are an exact partition of the token matrix.
        let sampler = ShardedWarpLda::new(
            &corpus,
            ModelParams::new(4, 0.5, 0.1),
            WarpLdaConfig::with_mh_steps(1),
            11,
        );
        let plan = ShardPlan::build(&sampler, &grid);
        for lists in [&plan.word_delta_entries, &plan.doc_delta_entries] {
            let mut seen = vec![false; sampler.num_entries()];
            for list in lists.iter() {
                for &e in list {
                    prop_assert!(!seen[e as usize], "entry {} owned twice", e);
                    seen[e as usize] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "some entry unowned");
        }
    }
}

// ---------------------------------------------------------------------------
// Frame buffer: any partial delivery of a frame stream — byte-at-a-time,
// random split points, splits inside the 4-byte length prefix — reassembles
// exactly the frames that were sent, and truncation anywhere inside a frame
// is a typed error, never a hang or a wrong frame.
// ---------------------------------------------------------------------------
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_buffer_reassembles_any_partial_delivery(
        payloads in prop::collection::vec(prop::collection::vec(0u8..255, 0..200), 1..12),
        chunks in prop::collection::vec(1usize..9, 1..64),
    ) {
        use warplda::net::{write_frame, FrameBuffer};

        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).unwrap();
        }

        // Deliver the stream in the scripted chunk sizes (cycled). Sizes
        // start at 1 byte, so splits land inside length prefixes and inside
        // payloads all the time.
        let mut fb = FrameBuffer::new(8);
        let mut seen: Vec<Vec<u8>> = Vec::new();
        let mut pos = 0usize;
        let mut turn = 0usize;
        while pos < stream.len() {
            let n = chunks[turn % chunks.len()].min(stream.len() - pos);
            turn += 1;
            let mut cursor = std::io::Cursor::new(&stream[pos..pos + n]);
            loop {
                while let Some(range) = fb.take_frame().unwrap() {
                    seen.push(fb.payload(range).to_vec());
                }
                if fb.fill_from(&mut cursor).unwrap() == 0 {
                    break;
                }
            }
            pos += n;
        }
        while let Some(range) = fb.take_frame().unwrap() {
            seen.push(fb.payload(range).to_vec());
        }
        prop_assert_eq!(seen, payloads);
    }

    #[test]
    fn frame_buffer_flags_any_truncation_as_malformed(
        payload in prop::collection::vec(0u8..255, 1..200),
        cut_seed in 0usize..10_000,
    ) {
        use warplda::net::{write_frame, FrameBuffer, WireError};

        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).unwrap();
        // Cut strictly inside the frame: anywhere from mid-prefix (1..4) to
        // one byte short of complete.
        let cut = 1 + cut_seed % (stream.len() - 1);
        stream.truncate(cut);

        let mut fb = FrameBuffer::new(8);
        let mut cursor = std::io::Cursor::new(stream);
        match fb.read_frame(&mut cursor) {
            Err(WireError::Malformed(msg)) => prop_assert!(msg.contains("mid-frame")),
            other => return Err(TestCaseError::Fail(
                format!("truncated at {cut}: expected Malformed, got {other:?}"),
            )),
        }
    }
}

// A tiny compile-time check that the probe abstraction is object-safe enough
// for downstream users who want dynamic instrumentation.
#[test]
fn no_probe_is_a_valid_probe() {
    fn touch<P: MemoryProbe>(mut p: P) {
        let r = p.register_region("x", 4, 4);
        p.read(r, 0);
        p.write(r, 1);
    }
    touch(NoProbe);
}
