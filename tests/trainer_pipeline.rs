//! Integration tests of the unified [`Trainer`] pipeline: the evaluation
//! schedule, the checkpoint cadence, and — the point of the overlapped
//! evaluator — that sampling iterations are *not* serialized behind
//! likelihood computation.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use warplda::prelude::*;

type Spans = Arc<Mutex<Vec<(Instant, Instant)>>>;

/// A sampler whose iterations take a fixed, known wall time; used to measure
/// the pipeline itself rather than any real sampler.
struct SlowSampler {
    params: ModelParams,
    z: Vec<u32>,
    iters: u64,
    iteration_time: Duration,
    sampling_spans: Spans,
}

impl Sampler for SlowSampler {
    fn name(&self) -> &'static str {
        "SlowSampler"
    }
    fn params(&self) -> &ModelParams {
        &self.params
    }
    fn run_iteration(&mut self) {
        let start = Instant::now();
        std::thread::sleep(self.iteration_time);
        self.iters += 1;
        self.sampling_spans.lock().unwrap().push((start, Instant::now()));
    }
    fn iterations(&self) -> u64 {
        self.iters
    }
    fn assignments(&self) -> Vec<u32> {
        self.z.clone()
    }
    fn assignments_slice(&self) -> Option<&[u32]> {
        Some(&self.z)
    }
}

/// Builds a trainer whose evaluation function takes `eval_time` and records
/// its execution span, plus a slow sampler, over the given corpus.
fn slow_setup(
    corpus: &Corpus,
    iteration_time: Duration,
    eval_time: Duration,
) -> (Trainer<'_>, SlowSampler, Spans, Spans) {
    let sampling_spans: Spans = Arc::new(Mutex::new(Vec::new()));
    let eval_spans: Spans = Arc::new(Mutex::new(Vec::new()));
    let eval_spans_clone = Arc::clone(&eval_spans);
    let trainer = Trainer::new(corpus).with_eval_fn(Box::new(move |input| {
        let start = Instant::now();
        std::thread::sleep(eval_time);
        eval_spans_clone.lock().unwrap().push((start, Instant::now()));
        input.assignments.len() as f64
    }));
    let sampler = SlowSampler {
        params: ModelParams::paper_defaults(4),
        z: vec![0; corpus.num_tokens() as usize],
        iters: 0,
        iteration_time,
        sampling_spans: Arc::clone(&sampling_spans),
    };
    (trainer, sampler, sampling_spans, eval_spans)
}

fn spans_overlap(a: &[(Instant, Instant)], b: &[(Instant, Instant)]) -> bool {
    a.iter().any(|&(a0, a1)| b.iter().any(|&(b0, b1)| a0 < b1 && b0 < a1))
}

#[test]
fn overlapped_evaluation_does_not_serialize_sampling() {
    let corpus = DatasetPreset::Tiny.generate_scaled(32);
    let iteration_time = Duration::from_millis(40);
    let eval_time = Duration::from_millis(40);
    let iterations = 4;

    // Inline: every evaluation stalls the loop, so the wall time is at least
    // iterations * (iteration + eval) and no spans ever overlap.
    let (trainer, mut sampler, sampling_spans, eval_spans) =
        slow_setup(&corpus, iteration_time, eval_time);
    let t0 = Instant::now();
    trainer.train(
        &TrainerConfig::new(iterations).eval_every(1).inline_eval(),
        "inline",
        &mut sampler,
    );
    let inline_wall = t0.elapsed();
    assert!(
        !spans_overlap(&sampling_spans.lock().unwrap(), &eval_spans.lock().unwrap()),
        "inline evaluation must never run concurrently with sampling"
    );
    assert!(
        inline_wall >= Duration::from_millis(4 * (40 + 40)),
        "inline evaluation serializes: {inline_wall:?}"
    );

    // Overlapped: evaluations run on the background worker while the next
    // iteration samples, so some evaluation span overlaps some sampling span
    // and the total wall time drops by roughly the hidden evaluation time.
    let (trainer, mut sampler, sampling_spans, eval_spans) =
        slow_setup(&corpus, iteration_time, eval_time);
    let t0 = Instant::now();
    trainer.train(&TrainerConfig::new(iterations).eval_every(1), "overlapped", &mut sampler);
    let overlapped_wall = t0.elapsed();
    assert!(
        spans_overlap(&sampling_spans.lock().unwrap(), &eval_spans.lock().unwrap()),
        "overlapped evaluation must run concurrently with sampling"
    );
    assert!(
        overlapped_wall < inline_wall,
        "overlap must beat inline: {overlapped_wall:?} vs {inline_wall:?}"
    );
}

#[test]
fn overlapped_and_inline_produce_identical_likelihoods_and_chains() {
    let corpus = DatasetPreset::Tiny.generate_scaled(8);
    let params = ModelParams::paper_defaults(10);
    let config = WarpLdaConfig::with_mh_steps(2);
    let trainer = Trainer::new(&corpus);

    let mut a = WarpLda::new(&corpus, params, config, 21);
    let overlapped = trainer.train(&TrainerConfig::new(12).eval_every(3), "overlapped", &mut a);
    let mut b = WarpLda::new(&corpus, params, config, 21);
    let inline =
        trainer.train(&TrainerConfig::new(12).eval_every(3).inline_eval(), "inline", &mut b);

    assert_eq!(a.assignments(), b.assignments(), "evaluation must not perturb the chain");
    let lls = |log: &IterationLog| -> Vec<(u64, u64)> {
        log.eval_points().map(|r| (r.iteration, r.log_likelihood.unwrap().to_bits())).collect()
    };
    assert_eq!(lls(&overlapped), lls(&inline), "likelihood values must be identical");
    assert_eq!(overlapped.eval_points().count(), 4, "iterations 3, 6, 9, 12");
}

#[test]
fn checkpoint_cadence_writes_and_resumes() {
    let corpus = DatasetPreset::Tiny.generate_scaled(4);
    let params = ModelParams::paper_defaults(6);
    let config = WarpLdaConfig::with_mh_steps(2);
    let dir = std::env::temp_dir().join(format!("warplda-trainer-test-{}", std::process::id()));

    let trainer = Trainer::new(&corpus);
    let schedule = TrainerConfig::new(6).eval_every(0).no_final_eval().checkpoint_into(&dir, 2);
    let mut sampler = WarpLda::new(&corpus, params, config, 9);
    let outcome = trainer
        .train_checkpointed(&schedule, "run A", &mut sampler, Some(corpus.vocab()))
        .expect("checkpointed training succeeds");
    assert_eq!(outcome.checkpoints.len(), 3, "iterations 2, 4 and 6");
    for path in &outcome.checkpoints {
        assert!(path.exists(), "{path:?} must exist");
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("run_A-iter"));
    }

    // Resume from the iteration-4 checkpoint and run the remaining 2
    // iterations: bit-identical to the uninterrupted 6-iteration run.
    let mut resumed = WarpLda::new(&corpus, params, config, 777);
    let continued = trainer
        .resume(
            &TrainerConfig::new(2).eval_every(0).no_final_eval().checkpoint_into(&dir, 2),
            "run A resumed",
            &mut resumed,
            &outcome.checkpoints[1],
            None,
        )
        .expect("resume succeeds");
    assert_eq!(resumed.iterations(), 6);
    assert_eq!(resumed.assignments(), sampler.assignments());
    assert_eq!(continued.log.records().first().map(|r| r.iteration), Some(5));

    // Checkpoints written by the resumed run carry the vocabulary embedded in
    // the loaded checkpoint even though resume() was given None.
    let final_ckpt = continued.checkpoints.last().expect("resumed run checkpointed");
    let mut reloaded = WarpLda::new(&corpus, params, config, 4242);
    let vocab = load_checkpoint(&mut reloaded, final_ckpt).expect("reload succeeds");
    assert_eq!(vocab.expect("vocab carried through resume").len(), corpus.vocab_size());

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn trainer_drives_every_sampler_kind_through_one_pipeline() {
    let corpus = DatasetPreset::Tiny.generate_scaled(4);
    let params = ModelParams::paper_defaults(8);
    let trainer = Trainer::new(&corpus);
    let schedule = TrainerConfig::new(3).eval_every(3);

    let mut samplers: Vec<Box<dyn Sampler>> = vec![
        Box::new(CollapsedGibbs::new(&corpus, params, 1)),
        Box::new(SparseLda::new(&corpus, params, 1)),
        Box::new(AliasLda::new(&corpus, params, 1)),
        Box::new(FPlusLda::new(&corpus, params, 1)),
        Box::new(LightLda::new(&corpus, params, 2, 1)),
        Box::new(WarpLda::new(&corpus, params, WarpLdaConfig::default(), 1)),
        Box::new(ParallelWarpLda::new(&corpus, params, WarpLdaConfig::default(), 1, 2)),
    ];
    for sampler in &mut samplers {
        let log = trainer.train(&schedule, "any", sampler.as_mut());
        assert_eq!(log.records().len(), 3);
        assert!(log.final_ll().is_finite());
        assert!(log.total_seconds() > 0.0);
    }
}
