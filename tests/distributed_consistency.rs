//! Distributed-vs-shared-memory consistency: the simulated cluster must learn
//! exactly the same model as the multi-threaded sampler (the simulation only
//! adds accounting), the grid partition must stay balanced, and the
//! communication volume must match the analytical bound.

use warplda::prelude::*;

fn corpus() -> Corpus {
    DatasetPreset::Tiny.generate_scaled(2)
}

#[test]
fn distributed_assignments_match_shared_memory_run() {
    let corpus = corpus();
    let params = ModelParams::paper_defaults(12);
    let config = WarpLdaConfig::with_mh_steps(2);
    let workers = 4;

    let mut dist = DistributedWarpLda::new(
        &corpus,
        params,
        config,
        ClusterConfig::tianhe2_like(workers, config.mh_steps),
        31,
    );
    let mut shared = ParallelWarpLda::new(&corpus, params, config, 31, workers);
    for _ in 0..5 {
        dist.run_iteration(&corpus, false);
        shared.run_iteration();
    }
    assert_eq!(dist.assignments(), shared.assignments());
}

#[test]
fn grid_partition_is_balanced_and_complete() {
    let corpus = corpus();
    let doc_view = DocMajorView::build(&corpus);
    let word_view = WordMajorView::build(&corpus, &doc_view);
    for workers in [2usize, 4, 8] {
        let grid = GridPartition::build(
            &corpus,
            &doc_view,
            &word_view,
            workers,
            PartitionStrategy::Greedy,
        );
        assert_eq!(grid.total_tokens(), corpus.num_tokens());
        assert!(
            grid.doc_phase_imbalance() < 0.1,
            "doc-phase imbalance too high for {workers} workers: {}",
            grid.doc_phase_imbalance()
        );
        assert!(
            grid.word_phase_imbalance() < 0.2,
            "word-phase imbalance too high for {workers} workers: {}",
            grid.word_phase_imbalance()
        );
    }
}

#[test]
fn communication_volume_matches_grid_bound() {
    let corpus = corpus();
    let params = ModelParams::paper_defaults(8);
    let config = WarpLdaConfig::with_mh_steps(3);
    let cluster = ClusterConfig::tianhe2_like(4, config.mh_steps);
    let mut dist = DistributedWarpLda::new(&corpus, params, config, cluster, 3);
    let report = dist.run_iteration(&corpus, false);
    // (M + 1) * 4 bytes per off-diagonal token, two exchanges per iteration.
    let expected =
        dist.grid().tokens_exchanged_per_phase_switch() * (config.mh_steps as u64 + 1) * 4 * 2;
    assert_eq!(report.bytes_exchanged, expected);
    assert!(report.comm_sec > 0.0);
    assert!(report.tokens_per_sec > 0.0);
}

#[test]
fn distributed_convergence_improves_likelihood() {
    let corpus = corpus();
    let params = ModelParams::paper_defaults(12);
    let config = WarpLdaConfig::with_mh_steps(2);
    let mut dist = DistributedWarpLda::new(
        &corpus,
        params,
        config,
        ClusterConfig::tianhe2_like(8, config.mh_steps),
        5,
    );
    let first = dist.run_iteration(&corpus, true).log_likelihood.unwrap();
    let reports = dist.run(&corpus, 20, 20);
    let last = reports.last().unwrap().log_likelihood.unwrap();
    assert!(last > first, "distributed training should improve likelihood: {first} -> {last}");
}

#[test]
fn more_workers_do_not_change_total_work() {
    let corpus = corpus();
    let params = ModelParams::paper_defaults(8);
    let config = WarpLdaConfig::with_mh_steps(1);
    for workers in [1usize, 2, 4] {
        let mut dist = DistributedWarpLda::new(
            &corpus,
            params,
            config,
            ClusterConfig::tianhe2_like(workers, 1),
            7,
        );
        let r = dist.run_iteration(&corpus, false);
        assert_eq!(r.tokens_sampled, corpus.num_tokens() * 2, "workers = {workers}");
    }
}
