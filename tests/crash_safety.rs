//! Crash-safe persistence: every artifact save (checkpoints, frozen serving
//! models) goes through `warplda_corpus::io::atomic_write` — temp file in the
//! target directory, flush + fsync, atomic rename. These tests script a
//! crash at a precise write via the fail-Nth-write injection hook and assert
//! the three atomicity guarantees: the previous artifact is untouched, no
//! temp debris is left behind, and a half-written artifact never becomes
//! visible under the target name.

use std::path::Path;

use warplda::corpus::io::atomic::{disarm_write_faults, fail_nth_write};
use warplda::prelude::*;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("warplda-crash-safety-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Any leftover `.tmp-` artifacts in `dir`.
fn temp_debris(dir: &Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .expect("read scratch dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".tmp-"))
        .collect()
}

#[test]
fn interrupted_checkpoint_save_never_corrupts_the_previous_checkpoint() {
    let dir = scratch_dir("ckpt");
    let path = dir.join("training.ckpt");
    let corpus = DatasetPreset::Tiny.generate_scaled(2);
    let params = ModelParams::paper_defaults(8);
    let mut sampler = ShardedWarpLda::new(&corpus, params, WarpLdaConfig::default(), 17);
    sampler.run_iteration();

    // A good checkpoint exists.
    save_checkpoint(&sampler, Some(corpus.vocab()), &path).expect("initial save");
    let good_bytes = std::fs::read(&path).expect("read good checkpoint");

    // Training advances, then the next save dies mid-write — at an early
    // write (headers) and at a later one (payload), the guarantees hold.
    // The framed container is five writes: magic, version, length, checksum,
    // payload. Kill the first (nothing on disk yet), a header in the middle,
    // and the payload itself (temp file holds a believable prefix).
    sampler.run_iteration();
    for n in [1u64, 3, 5] {
        fail_nth_write(n);
        let err = save_checkpoint(&sampler, Some(corpus.vocab()), &path)
            .expect_err("injected write fault must abort the save");
        assert!(err.to_string().contains("injected"), "unexpected error: {err}");
        disarm_write_faults();

        assert_eq!(
            std::fs::read(&path).expect("checkpoint still readable"),
            good_bytes,
            "failing save (n = {n}) must leave the previous checkpoint untouched"
        );
        assert_eq!(temp_debris(&dir), Vec::<String>::new(), "temp debris after n = {n}");
    }

    // The original still loads, and a retry with the fault gone replaces it.
    let mut reloaded = ShardedWarpLda::new(&corpus, params, WarpLdaConfig::default(), 17);
    load_checkpoint(&mut reloaded, &path).expect("previous checkpoint loads");
    assert_eq!(reloaded.iterations(), 1);

    save_checkpoint(&sampler, Some(corpus.vocab()), &path).expect("retry succeeds");
    let mut latest = ShardedWarpLda::new(&corpus, params, WarpLdaConfig::default(), 17);
    load_checkpoint(&mut latest, &path).expect("new checkpoint loads");
    assert_eq!(latest.iterations(), 2);
    assert_eq!(latest.assignments(), sampler.assignments());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn half_written_model_never_becomes_visible() {
    let dir = scratch_dir("model");
    let path = dir.join("frozen.model");
    let corpus = DatasetPreset::Tiny.generate_scaled(2);
    let mut sampler =
        WarpLda::new(&corpus, ModelParams::paper_defaults(8), WarpLdaConfig::default(), 3);
    sampler.run_iteration();
    let model = TopicModel::freeze_sampler(&sampler, &corpus);

    // No previous artifact: a save that dies mid-write must leave *nothing*
    // visible — a reader can never observe a readable-but-corrupt model.
    fail_nth_write(2);
    model.save(&path).expect_err("injected write fault must abort the save");
    disarm_write_faults();
    assert!(!path.exists(), "half-written model became visible");
    assert_eq!(temp_debris(&dir), Vec::<String>::new());
    assert!(TopicModel::load(&path).is_err(), "nothing to load after an aborted save");

    // The retry publishes a complete, loadable model.
    model.save(&path).expect("retry succeeds");
    let loaded = TopicModel::load(&path).expect("complete model loads");
    assert_eq!(loaded.num_topics(), model.num_topics());

    let _ = std::fs::remove_dir_all(&dir);
}
