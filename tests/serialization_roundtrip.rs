//! Serialization round-trips: corpora, statistics and model snapshots survive
//! the UCI text format and the serde data model (exercised through JSON-like
//! introspection of the derived implementations via `serde_test`-free checks).

use warplda::corpus::io::{read_uci_bag_of_words, read_uci_vocab, write_uci_bag_of_words};
use warplda::prelude::*;

#[test]
fn uci_format_round_trips_counts_exactly() {
    let corpus = DatasetPreset::Tiny.generate_scaled(4);
    let mut buf = Vec::new();
    write_uci_bag_of_words(&corpus, &mut buf).unwrap();
    let reread = read_uci_bag_of_words(buf.as_slice(), None).unwrap();
    assert_eq!(reread.num_docs(), corpus.num_docs());
    assert_eq!(reread.num_tokens(), corpus.num_tokens());
    assert_eq!(reread.vocab_size(), corpus.vocab_size());
    assert_eq!(reread.term_frequencies(), corpus.term_frequencies());
    // Per-document token multisets are preserved (order may differ).
    for (d, doc) in corpus.iter() {
        let mut a = doc.tokens().to_vec();
        let mut b = reread.doc(d).unwrap().tokens().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "document {d}");
    }
}

#[test]
fn vocab_file_round_trips_word_strings() {
    let mut builder = CorpusBuilder::new();
    builder.push_text_doc(["alpha", "beta", "gamma", "alpha"]);
    let corpus = builder.build().unwrap();

    // Write the vocabulary as the UCI vocab.*.txt format and read it back.
    let vocab_txt: String = (0..corpus.vocab_size())
        .map(|w| format!("{}\n", corpus.vocab().word(w as u32).unwrap()))
        .collect();
    let vocab = read_uci_vocab(vocab_txt.as_bytes()).unwrap();
    assert_eq!(vocab.len(), corpus.vocab_size());
    assert_eq!(vocab.word(0), Some("alpha"));
    assert_eq!(vocab.get("gamma"), Some(2));
}

#[test]
fn corpus_stats_and_model_state_survive_retraining_from_assignments() {
    // A trained model can be exported as plain topic assignments and later
    // re-imported into a SamplerState without losing any counts.
    let corpus = DatasetPreset::Tiny.generate_scaled(4);
    let params = ModelParams::paper_defaults(8);
    let mut sampler = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 17);
    for _ in 0..10 {
        sampler.run_iteration();
    }
    let doc_view = DocMajorView::build(&corpus);
    let word_view = WordMajorView::build(&corpus, &doc_view);
    let exported = sampler.assignments();

    let restored =
        SamplerState::from_assignments(&corpus, &doc_view, &word_view, params, exported.clone());
    restored.assert_consistent(&doc_view, &word_view);
    assert_eq!(restored.assignments(), &exported[..]);

    // The restored state reproduces the exact same likelihood.
    let from_sampler = sampler.log_likelihood(&corpus, &doc_view, &word_view);
    let from_restored =
        warplda::lda::eval::log_joint_likelihood_of_state(&doc_view, &word_view, &restored);
    assert!((from_sampler - from_restored).abs() < 1e-9);
}

#[test]
fn synthetic_generation_is_reproducible_across_processes() {
    // The same preset and seed must always generate the identical corpus —
    // this is what makes every experiment in EXPERIMENTS.md reproducible.
    let a = DatasetPreset::PubMedLike.generate_scaled(50);
    let b = DatasetPreset::PubMedLike.generate_scaled(50);
    assert_eq!(a.num_tokens(), b.num_tokens());
    assert_eq!(a.term_frequencies(), b.term_frequencies());
    let sa = a.stats();
    let sb = b.stats();
    assert_eq!(sa, sb);
}
