//! Serialization round-trips through the *real* binary checkpoint codec:
//! every sampler in the workspace saves and reloads losslessly, corrupted
//! files are rejected by the framed container (magic + version + checksum),
//! and a saved WarpLDA run — serial and parallel — continues bit-identically
//! to an uninterrupted one. The UCI text format round-trips are retained from
//! the original suite.

use warplda::corpus::io::codec::CodecError;
use warplda::corpus::io::{read_uci_bag_of_words, write_uci_bag_of_words};
use warplda::lda::checkpoint::{
    read_checkpoint, read_state_snapshot, write_checkpoint, write_state_snapshot,
};
use warplda::prelude::*;

fn corpus() -> Corpus {
    DatasetPreset::Tiny.generate_scaled(4)
}

/// Trains `sampler` for `iterations`, saves it, loads the checkpoint into
/// `fresh`, and asserts the reload is lossless (assignments, iteration
/// counter and likelihood all identical).
fn roundtrip(
    corpus: &Corpus,
    sampler: &mut dyn Checkpointable,
    fresh: &mut dyn Checkpointable,
    iterations: usize,
) {
    let trainer = Trainer::new(corpus);
    trainer.train(&TrainerConfig::sampling_only(iterations), sampler.name(), sampler);

    let mut buf = Vec::new();
    write_checkpoint(sampler, Some(corpus.vocab()), &mut buf).expect("checkpoint writes");
    let vocab = read_checkpoint(fresh, &mut buf.as_slice()).expect("checkpoint reads");
    assert_eq!(vocab.expect("vocab embedded").len(), corpus.vocab_size());

    assert_eq!(fresh.iterations(), iterations as u64, "{}", sampler.name());
    assert_eq!(fresh.assignments(), sampler.assignments(), "{}", sampler.name());
    let ll_a = sampler.log_likelihood(corpus, trainer.doc_view(), trainer.word_view());
    let ll_b = fresh.log_likelihood(corpus, trainer.doc_view(), trainer.word_view());
    assert_eq!(ll_a.to_bits(), ll_b.to_bits(), "{}: {ll_a} vs {ll_b}", sampler.name());
}

#[test]
fn checkpoint_round_trips_all_six_samplers() {
    let corpus = corpus();
    let params = ModelParams::paper_defaults(8);

    // Fresh samplers are constructed with a *different* seed on purpose: the
    // checkpoint must fully determine the restored state.
    roundtrip(
        &corpus,
        &mut CollapsedGibbs::new(&corpus, params, 7),
        &mut CollapsedGibbs::new(&corpus, params, 99),
        5,
    );
    roundtrip(
        &corpus,
        &mut SparseLda::new(&corpus, params, 7),
        &mut SparseLda::new(&corpus, params, 99),
        5,
    );
    roundtrip(
        &corpus,
        &mut AliasLda::new(&corpus, params, 7),
        &mut AliasLda::new(&corpus, params, 99),
        5,
    );
    roundtrip(
        &corpus,
        &mut FPlusLda::new(&corpus, params, 7),
        &mut FPlusLda::new(&corpus, params, 99),
        5,
    );
    roundtrip(
        &corpus,
        &mut LightLda::new(&corpus, params, 4, 7),
        &mut LightLda::new(&corpus, params, 4, 99),
        5,
    );
    let config = WarpLdaConfig::with_mh_steps(2);
    roundtrip(
        &corpus,
        &mut WarpLda::new(&corpus, params, config, 7),
        &mut WarpLda::new(&corpus, params, config, 99),
        5,
    );
}

#[test]
fn corrupted_checkpoints_are_rejected() {
    let corpus = corpus();
    let params = ModelParams::paper_defaults(6);
    let sampler = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 3);
    let mut buf = Vec::new();
    write_checkpoint(&sampler, None, &mut buf).expect("checkpoint writes");

    // A flipped magic byte: not recognized as a checkpoint at all.
    let mut bad_magic = buf.clone();
    bad_magic[0] ^= 0xFF;
    let mut target = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 3);
    assert!(matches!(
        read_checkpoint(&mut target, &mut bad_magic.as_slice()),
        Err(CodecError::BadMagic)
    ));

    // A flipped payload bit: caught by the checksum.
    let mut bad_payload = buf.clone();
    let last = bad_payload.len() - 1;
    bad_payload[last] ^= 0x01;
    assert!(matches!(
        read_checkpoint(&mut target, &mut bad_payload.as_slice()),
        Err(CodecError::ChecksumMismatch { .. })
    ));

    // A truncated file: short read.
    let mut truncated = buf.clone();
    truncated.truncate(truncated.len() / 2);
    assert!(matches!(
        read_checkpoint(&mut target, &mut truncated.as_slice()),
        Err(CodecError::Io(_))
    ));

    // An unknown future format version.
    let mut future = buf.clone();
    future[8..12].copy_from_slice(&42u32.to_le_bytes());
    assert!(matches!(
        read_checkpoint(&mut target, &mut future.as_slice()),
        Err(CodecError::UnsupportedVersion(42))
    ));

    // A legacy v1 file (split assignment/proposal arrays, pre-packed-record
    // layout): rejected with the dedicated typed error, not misread.
    let mut legacy = buf.clone();
    legacy[8..12].copy_from_slice(&1u32.to_le_bytes());
    let err = read_checkpoint(&mut target, &mut legacy.as_slice()).unwrap_err();
    assert!(matches!(err, CodecError::LegacyVersion(1)), "{err}");

    // None of the rejections left the target partially overwritten in a way
    // that breaks it: it still runs.
    target.run_iteration();
}

/// Save → load → continue must equal an uninterrupted run *bit for bit*.
fn assert_resume_is_bit_identical<S: Checkpointable>(
    corpus: &Corpus,
    make: impl Fn(u64) -> S,
    split: usize,
    total: usize,
) {
    let trainer = Trainer::new(corpus);

    // The uninterrupted reference run.
    let mut continuous = make(11);
    trainer.train(&TrainerConfig::sampling_only(total), "continuous", &mut continuous);

    // The interrupted run: train to `split`, checkpoint, reload into a fresh
    // sampler (different seed — the checkpoint must carry the RNG), continue.
    let mut first_half = make(11);
    trainer.train(&TrainerConfig::sampling_only(split), "first-half", &mut first_half);
    let mut buf = Vec::new();
    write_checkpoint(&first_half, None, &mut buf).expect("checkpoint writes");

    let mut resumed = make(1234);
    read_checkpoint(&mut resumed, &mut buf.as_slice()).expect("checkpoint reads");
    assert_eq!(resumed.assignments(), first_half.assignments());
    trainer.train(&TrainerConfig::sampling_only(total - split), "second-half", &mut resumed);

    assert_eq!(resumed.iterations(), continuous.iterations());
    assert_eq!(
        resumed.assignments(),
        continuous.assignments(),
        "resumed run must match the uninterrupted run bit for bit"
    );
}

#[test]
fn serial_warplda_resume_equals_continuous_run() {
    let corpus = corpus();
    let params = ModelParams::paper_defaults(8);
    let config = WarpLdaConfig::with_mh_steps(2);
    assert_resume_is_bit_identical(
        &corpus,
        |seed| WarpLda::new(&corpus, params, config, seed),
        4,
        9,
    );
}

#[test]
fn parallel_warplda_resume_equals_continuous_run() {
    let corpus = corpus();
    let params = ModelParams::paper_defaults(8);
    let config = WarpLdaConfig::with_mh_steps(2);
    assert_resume_is_bit_identical(
        &corpus,
        |seed| ParallelWarpLda::new(&corpus, params, config, seed, 3),
        3,
        7,
    );
}

#[test]
fn state_snapshot_round_trips_a_trained_model() {
    // A trained model can be exported as a binary state snapshot (assignments
    // + vocabulary) and later re-imported without losing any counts.
    let corpus = corpus();
    let params = ModelParams::paper_defaults(8);
    let trainer = Trainer::new(&corpus);
    let mut sampler = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 17);
    trainer.train(&TrainerConfig::sampling_only(10), "warp", &mut sampler);

    let state = sampler.snapshot_state(&corpus, trainer.doc_view(), trainer.word_view());
    let mut buf = Vec::new();
    write_state_snapshot(&state, Some(corpus.vocab()), &mut buf).expect("snapshot writes");
    let (restored, vocab) =
        read_state_snapshot(&mut buf.as_slice(), trainer.doc_view(), trainer.word_view())
            .expect("snapshot reads");
    restored.assert_consistent(trainer.doc_view(), trainer.word_view());
    assert_eq!(restored.assignments(), &sampler.assignments()[..]);
    assert_eq!(vocab.expect("vocab embedded").len(), corpus.vocab_size());

    // The restored state reproduces the exact same likelihood.
    let from_sampler = sampler.log_likelihood(&corpus, trainer.doc_view(), trainer.word_view());
    let from_restored = warplda::lda::eval::log_joint_likelihood_of_state(
        trainer.doc_view(),
        trainer.word_view(),
        &restored,
    );
    assert!((from_sampler - from_restored).abs() < 1e-9);
}

#[test]
fn checkpoint_files_round_trip_on_disk() {
    let corpus = corpus();
    let params = ModelParams::paper_defaults(6);
    let dir = std::env::temp_dir().join(format!("warplda-ckpt-test-{}", std::process::id()));
    let path = dir.join("nested/run.ckpt");

    let mut sampler = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 5);
    sampler.run_iteration();
    save_checkpoint(&sampler, Some(corpus.vocab()), &path).expect("file saves");

    let mut fresh = WarpLda::new(&corpus, params, WarpLdaConfig::default(), 500);
    let vocab = load_checkpoint(&mut fresh, &path).expect("file loads");
    assert_eq!(fresh.assignments(), sampler.assignments());
    assert_eq!(vocab.expect("vocab embedded").len(), corpus.vocab_size());

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn uci_format_round_trips_counts_exactly() {
    let corpus = corpus();
    let mut buf = Vec::new();
    write_uci_bag_of_words(&corpus, &mut buf).unwrap();
    let reread = read_uci_bag_of_words(buf.as_slice(), None).unwrap();
    assert_eq!(reread.num_docs(), corpus.num_docs());
    assert_eq!(reread.num_tokens(), corpus.num_tokens());
    assert_eq!(reread.vocab_size(), corpus.vocab_size());
    assert_eq!(reread.term_frequencies(), corpus.term_frequencies());
    // Per-document token multisets are preserved (order may differ).
    for (d, doc) in corpus.iter() {
        let mut a = doc.tokens().to_vec();
        let mut b = reread.doc(d).unwrap().tokens().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "document {d}");
    }
}

#[test]
fn synthetic_generation_is_reproducible_across_processes() {
    // The same preset and seed must always generate the identical corpus —
    // this is what makes every experiment in EXPERIMENTS.md reproducible.
    let a = DatasetPreset::PubMedLike.generate_scaled(50);
    let b = DatasetPreset::PubMedLike.generate_scaled(50);
    assert_eq!(a.num_tokens(), b.num_tokens());
    assert_eq!(a.term_frequencies(), b.term_frequencies());
    let sa = a.stats();
    let sb = b.stats();
    assert_eq!(sa, sb);
}
