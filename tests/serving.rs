//! End-to-end serving suite: train → freeze → serve → query over loopback.
//!
//! The load-bearing property is the acceptance criterion of the serving
//! subsystem: **θ is a pure function of the request**. A response produced by
//! a multi-worker server under concurrent load must be bit-identical to a
//! single-threaded engine run with the same request seed, for any worker
//! count. Alongside it: the `WLDAMODL` artifact round trip (including
//! corruption rejection at the codec level) and model hot swap under live
//! traffic.

use std::sync::Arc;

use warplda::prelude::*;
use warplda::serve::wire::Response;

/// Trains a small model on the Tiny preset and freezes it.
fn frozen_model() -> (Corpus, Arc<TopicModel>) {
    let corpus = DatasetPreset::Tiny.generate_scaled(4);
    let params = ModelParams::paper_defaults(8);
    let mut sampler = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(2), 42);
    for _ in 0..15 {
        sampler.run_iteration();
    }
    let model = Arc::new(TopicModel::freeze_sampler(&sampler, &corpus));
    (corpus, model)
}

/// Unseen query documents as token ids: deterministic pseudo-documents over
/// the preset vocabulary (none is a training document).
fn queries(vocab_size: usize, n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            let len = 3 + (i % 9);
            (0..len).map(|j| ((i * 131 + j * 17 + 7) % vocab_size) as u32).collect()
        })
        .collect()
}

#[test]
fn concurrent_queries_are_bit_identical_to_the_single_threaded_reference() {
    let (corpus, model) = frozen_model();
    let config = ServerConfig::default();
    let docs = queries(corpus.vocab_size(), 120);

    // Single-threaded reference: the engine, directly, same seeds.
    let engine = InferenceEngine::new(&model, config.infer);
    let mut scratch = InferScratch::new();
    let reference: Vec<Vec<u64>> = docs
        .iter()
        .enumerate()
        .map(|(i, doc)| {
            engine.infer_into(doc, i as u64, &mut scratch);
            scratch.theta().iter().map(|v| v.to_bits()).collect()
        })
        .collect();

    for workers in [1usize, 2, 4] {
        let handle =
            Server::bind("127.0.0.1:0", Arc::clone(&model), ServerConfig { workers, ..config })
                .expect("bind loopback");
        let addr = handle.addr();

        // ≥ 100 queries concurrently from 4 client threads (client c takes
        // the indices i ≡ c mod 4), all in flight against `workers` server
        // workers.
        let num_clients = 4;
        std::thread::scope(|scope| {
            for c in 0..num_clients {
                let docs = &docs;
                let reference = &reference;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for (i, doc) in docs.iter().enumerate().filter(|(i, _)| i % num_clients == c) {
                        let resp = client.query_tokens(doc, i as u64, 3).expect("query");
                        let Response::Ok(reply) = resp else {
                            panic!("query {i} rejected: {resp:?}")
                        };
                        let bits: Vec<u64> = reply.theta.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(
                            bits, reference[i],
                            "query {i}: θ differs from the single-threaded \
                             reference under {workers} server workers"
                        );
                        assert_eq!(reply.tokens_used as usize, doc.len());
                    }
                });
            }
        });

        let stats = handle.latency();
        assert_eq!(stats.count as usize, docs.len(), "{workers} workers");
        assert!(stats.p50_us <= stats.p95_us && stats.p95_us <= stats.p99_us);
        handle.shutdown();
    }
}

#[test]
fn model_artifact_round_trips_on_disk_and_rejects_corruption() {
    use warplda::corpus::io::codec::CodecError;

    let (corpus, model) = frozen_model();
    let dir = std::env::temp_dir().join(format!("warplda-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.wldamodl");
    model.save(&path).expect("save model");

    // The loaded artifact answers queries bit-identically to the original.
    let loaded = TopicModel::load(&path).expect("load model");
    let config = InferConfig::default();
    let doc: Vec<u32> = queries(corpus.vocab_size(), 1).remove(0);
    let a = InferenceEngine::new(&model, config).infer(&doc, 9);
    let b = InferenceEngine::new(&loaded, config).infer(&doc, 9);
    assert_eq!(
        a.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        b.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );

    // Codec-level rejection: flipped payload byte, truncation, wrong magic.
    let bytes = std::fs::read(&path).unwrap();
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    assert!(matches!(
        TopicModel::read(&mut flipped.as_slice()),
        Err(CodecError::ChecksumMismatch { .. })
    ));
    let mut truncated = bytes.clone();
    truncated.truncate(truncated.len() / 2);
    assert!(matches!(TopicModel::read(&mut truncated.as_slice()), Err(CodecError::Io(_))));
    let mut wrong_magic = bytes.clone();
    wrong_magic[..8].copy_from_slice(b"WLDACKPT");
    assert!(matches!(TopicModel::read(&mut wrong_magic.as_slice()), Err(CodecError::BadMagic)));
    // And the converse: a real checkpoint is not a model.
    let ckpt_path = dir.join("sampler.ckpt");
    let mut sampler = WarpLda::new(&corpus, *model.params(), WarpLdaConfig::with_mh_steps(2), 42);
    sampler.run_iteration();
    save_checkpoint(&sampler, Some(corpus.vocab()), &ckpt_path).unwrap();
    assert!(matches!(TopicModel::load(&ckpt_path), Err(CodecError::BadMagic)));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_swap_under_live_traffic_never_drops_a_request() {
    let (corpus, model) = frozen_model();
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&model), ServerConfig::with_workers(2))
        .expect("bind loopback");
    let addr = handle.addr();
    let docs = queries(corpus.vocab_size(), 60);

    std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            let mut epochs_seen = Vec::new();
            let mut client = Client::connect(addr).expect("connect");
            for (i, doc) in docs.iter().enumerate() {
                match client.query_tokens(doc, i as u64, 1).expect("query") {
                    Response::Ok(reply) => epochs_seen.push(reply.model_epoch),
                    Response::Error(e) => panic!("request dropped during swap: {e}"),
                }
            }
            epochs_seen
        });
        // Promote a re-frozen model mid-stream (the state is identical, the
        // artifact is new — what a checkpoint promotion looks like).
        std::thread::sleep(std::time::Duration::from_millis(5));
        let mut retrained =
            WarpLda::new(&corpus, *model.params(), WarpLdaConfig::with_mh_steps(2), 43);
        for _ in 0..3 {
            retrained.run_iteration();
        }
        handle.swap_model(Arc::new(TopicModel::freeze_sampler(&retrained, &corpus)));
        let epochs = worker.join().expect("client thread");
        // Every request was answered, each by a well-defined model
        // generation, and the sequence is monotone (no request went back in
        // time after the promotion).
        assert_eq!(epochs.len(), docs.len());
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]), "epochs regressed: {epochs:?}");
        assert!(epochs.iter().all(|&e| e <= 1));
    });
    assert_eq!(handle.model_epoch(), 1);
    handle.shutdown();
}
