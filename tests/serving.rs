//! End-to-end serving suite: train → freeze → serve → query over loopback.
//!
//! The load-bearing property is the acceptance criterion of the serving
//! subsystem: **θ is a pure function of the request**. A response produced by
//! a multi-worker server under concurrent load must be bit-identical to a
//! single-threaded engine run with the same request seed, for any worker
//! count. Alongside it: the `WLDAMODL` artifact round trip (including
//! corruption rejection at the codec level) and model hot swap under live
//! traffic.

use std::sync::Arc;
use std::time::{Duration, Instant};

use warplda::prelude::*;
use warplda::serve::server::{CAPACITY_MSG, OVERLOAD_MSG};
use warplda::serve::wire::{Request, RequestBody, Response};

/// Polls `cond` until it holds or `timeout` elapses.
fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// Shrinks a socket's kernel receive buffer to a few KB so a reader that
/// never drains it backs the sender up almost immediately (kernel buffer
/// autotuning can otherwise absorb tens of MB before a write would block).
#[cfg(target_os = "linux")]
fn clamp_recv_buffer(stream: &std::net::TcpStream) {
    use std::os::fd::AsRawFd as _;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    let bytes: i32 = 4096;
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            &bytes as *const i32 as *const core::ffi::c_void,
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF) failed");
}

#[cfg(not(target_os = "linux"))]
fn clamp_recv_buffer(_stream: &std::net::TcpStream) {}

/// Trains a small model on the Tiny preset and freezes it.
fn frozen_model() -> (Corpus, Arc<TopicModel>) {
    let corpus = DatasetPreset::Tiny.generate_scaled(4);
    let params = ModelParams::paper_defaults(8);
    let mut sampler = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(2), 42);
    for _ in 0..15 {
        sampler.run_iteration();
    }
    let model = Arc::new(TopicModel::freeze_sampler(&sampler, &corpus));
    (corpus, model)
}

/// Unseen query documents as token ids: deterministic pseudo-documents over
/// the preset vocabulary (none is a training document).
fn queries(vocab_size: usize, n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            let len = 3 + (i % 9);
            (0..len).map(|j| ((i * 131 + j * 17 + 7) % vocab_size) as u32).collect()
        })
        .collect()
}

#[test]
fn concurrent_queries_are_bit_identical_to_the_single_threaded_reference() {
    let (corpus, model) = frozen_model();
    let config = ServerConfig::default();
    let docs = queries(corpus.vocab_size(), 120);

    // Single-threaded reference: the engine, directly, same seeds.
    let engine = InferenceEngine::new(&model, config.infer);
    let mut scratch = InferScratch::new();
    let reference: Vec<Vec<u64>> = docs
        .iter()
        .enumerate()
        .map(|(i, doc)| {
            engine.infer_into(doc, i as u64, &mut scratch);
            scratch.theta().iter().map(|v| v.to_bits()).collect()
        })
        .collect();

    for workers in [1usize, 2, 4] {
        let handle =
            Server::bind("127.0.0.1:0", Arc::clone(&model), ServerConfig { workers, ..config })
                .expect("bind loopback");
        let addr = handle.addr();

        // ≥ 100 queries concurrently from 4 client threads (client c takes
        // the indices i ≡ c mod 4), all in flight against `workers` server
        // workers.
        let num_clients = 4;
        std::thread::scope(|scope| {
            for c in 0..num_clients {
                let docs = &docs;
                let reference = &reference;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for (i, doc) in docs.iter().enumerate().filter(|(i, _)| i % num_clients == c) {
                        let resp = client.query_tokens(doc, i as u64, 3).expect("query");
                        let Response::Ok(reply) = resp else {
                            panic!("query {i} rejected: {resp:?}")
                        };
                        let bits: Vec<u64> = reply.theta.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(
                            bits, reference[i],
                            "query {i}: θ differs from the single-threaded \
                             reference under {workers} server workers"
                        );
                        assert_eq!(reply.tokens_used as usize, doc.len());
                    }
                });
            }
        });

        let stats = handle.latency();
        assert_eq!(stats.count as usize, docs.len(), "{workers} workers");
        assert!(stats.p50_us <= stats.p95_us && stats.p95_us <= stats.p99_us);
        handle.shutdown();
    }
}

#[test]
fn model_artifact_round_trips_on_disk_and_rejects_corruption() {
    use warplda::corpus::io::codec::CodecError;

    let (corpus, model) = frozen_model();
    let dir = std::env::temp_dir().join(format!("warplda-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.wldamodl");
    model.save(&path).expect("save model");

    // The loaded artifact answers queries bit-identically to the original.
    let loaded = TopicModel::load(&path).expect("load model");
    let config = InferConfig::default();
    let doc: Vec<u32> = queries(corpus.vocab_size(), 1).remove(0);
    let a = InferenceEngine::new(&model, config).infer(&doc, 9);
    let b = InferenceEngine::new(&loaded, config).infer(&doc, 9);
    assert_eq!(
        a.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        b.theta.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );

    // Codec-level rejection: flipped payload byte, truncation, wrong magic.
    let bytes = std::fs::read(&path).unwrap();
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    assert!(matches!(
        TopicModel::read(&mut flipped.as_slice()),
        Err(CodecError::ChecksumMismatch { .. })
    ));
    let mut truncated = bytes.clone();
    truncated.truncate(truncated.len() / 2);
    assert!(matches!(TopicModel::read(&mut truncated.as_slice()), Err(CodecError::Io(_))));
    let mut wrong_magic = bytes.clone();
    wrong_magic[..8].copy_from_slice(b"WLDACKPT");
    assert!(matches!(TopicModel::read(&mut wrong_magic.as_slice()), Err(CodecError::BadMagic)));
    // And the converse: a real checkpoint is not a model.
    let ckpt_path = dir.join("sampler.ckpt");
    let mut sampler = WarpLda::new(&corpus, *model.params(), WarpLdaConfig::with_mh_steps(2), 42);
    sampler.run_iteration();
    save_checkpoint(&sampler, Some(corpus.vocab()), &ckpt_path).unwrap();
    assert!(matches!(TopicModel::load(&ckpt_path), Err(CodecError::BadMagic)));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_swap_under_live_traffic_never_drops_a_request() {
    let (corpus, model) = frozen_model();
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&model), ServerConfig::with_workers(2))
        .expect("bind loopback");
    let addr = handle.addr();
    let docs = queries(corpus.vocab_size(), 60);

    std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            let mut epochs_seen = Vec::new();
            let mut client = Client::connect(addr).expect("connect");
            for (i, doc) in docs.iter().enumerate() {
                match client.query_tokens(doc, i as u64, 1).expect("query") {
                    Response::Ok(reply) => epochs_seen.push(reply.model_epoch),
                    Response::Error(e) => panic!("request dropped during swap: {e}"),
                }
            }
            epochs_seen
        });
        // Promote a re-frozen model mid-stream (the state is identical, the
        // artifact is new — what a checkpoint promotion looks like).
        std::thread::sleep(std::time::Duration::from_millis(5));
        let mut retrained =
            WarpLda::new(&corpus, *model.params(), WarpLdaConfig::with_mh_steps(2), 43);
        for _ in 0..3 {
            retrained.run_iteration();
        }
        handle.swap_model(Arc::new(TopicModel::freeze_sampler(&retrained, &corpus)));
        let epochs = worker.join().expect("client thread");
        // Every request was answered, each by a well-defined model
        // generation, and the sequence is monotone (no request went back in
        // time after the promotion).
        assert_eq!(epochs.len(), docs.len());
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]), "epochs regressed: {epochs:?}");
        assert!(epochs.iter().all(|&e| e <= 1));
    });
    assert_eq!(handle.model_epoch(), 1);
    handle.shutdown();
}

#[test]
fn idle_keepalive_connections_beyond_the_worker_count_still_get_served() {
    // The readiness-loop property: with 2 workers, hundreds of idle
    // keep-alive connections cost zero workers, active clients keep getting
    // answers, and the idle connections themselves are still serviceable.
    let (corpus, model) = frozen_model();
    let config = ServerConfig { workers: 2, ..ServerConfig::default() };
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&model), config).expect("bind loopback");
    let addr = handle.addr();

    let num_idle = 1024;
    let mut idle: Vec<Client> = (0..num_idle)
        .map(|i| {
            let mut c = Client::connect(addr).unwrap_or_else(|e| panic!("idle connect {i}: {e}"));
            c.set_deadline(Some(Duration::from_secs(60))).expect("deadline");
            c
        })
        .collect();
    assert!(
        wait_until(Duration::from_secs(30), || handle.counters().open_connections
            >= num_idle as u64),
        "event loop should hold all {num_idle} idle connections open, has {}",
        handle.counters().open_connections
    );

    // Active traffic flows while every idle connection stays attached.
    let docs = queries(corpus.vocab_size(), 40);
    let mut active = Client::connect(addr).expect("active connect");
    active.set_deadline(Some(Duration::from_secs(60))).expect("deadline");
    for (i, doc) in docs.iter().enumerate() {
        match active.query_tokens(doc, i as u64, 2).expect("active query") {
            Response::Ok(_) => {}
            Response::Error(e) => panic!("active query {i} rejected under idle load: {e}"),
        }
    }

    // A sample of the long-idle connections is still serviceable.
    for i in (0..num_idle).step_by(61) {
        let doc = &docs[i % docs.len()];
        match idle[i].query_tokens(doc, i as u64, 2).expect("idle query") {
            Response::Ok(_) => {}
            Response::Error(e) => panic!("idle connection {i} rejected its query: {e}"),
        }
    }

    let t0 = Instant::now();
    handle.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown with {num_idle} idle connections attached took {:?}",
        t0.elapsed()
    );
}

#[test]
fn overload_sheds_typed_errors_beyond_the_admission_bound() {
    let (corpus, model) = frozen_model();
    // One worker, admission bound of one queued job: a 200-request pipelined
    // burst must be partially shed — and every shed reply is the typed
    // overload error, delivered in request order.
    let config = ServerConfig { workers: 1, max_pending: 1, ..ServerConfig::default() };
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&model), config).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.set_deadline(Some(Duration::from_secs(60))).expect("deadline");

    let n = 200usize;
    let doc: Vec<u32> = queries(corpus.vocab_size(), 1).remove(0);
    for seed in 0..n {
        client
            .send(&Request { seed: seed as u64, top_n: 1, body: RequestBody::Tokens(doc.clone()) })
            .expect("send");
    }
    let (mut ok, mut shed) = (0usize, 0usize);
    for i in 0..n {
        match client.recv().unwrap_or_else(|e| panic!("response {i}: {e}")) {
            Response::Ok(_) => ok += 1,
            Response::Error(msg) => {
                assert_eq!(msg, OVERLOAD_MSG, "shed reply must be the typed overload error");
                shed += 1;
            }
        }
    }
    assert_eq!(ok + shed, n);
    assert!(ok >= 1, "at least the first admitted request must be served");
    assert!(shed >= 1, "a burst of {n} against max_pending=1 must shed");
    let counters = handle.counters();
    assert_eq!(counters.shed_overload, shed as u64, "counter must match client-visible sheds");

    // The connection survives overload: a lone follow-up request succeeds.
    match client.query_tokens(&doc, 7, 1).expect("follow-up") {
        Response::Ok(_) => {}
        Response::Error(e) => panic!("connection should recover after shedding: {e}"),
    }
    handle.shutdown();
}

#[test]
fn connections_beyond_the_cap_get_a_typed_capacity_error() {
    let (_corpus, model) = frozen_model();
    let config = ServerConfig { workers: 1, max_connections: 2, ..ServerConfig::default() };
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&model), config).expect("bind loopback");
    let mut keep: Vec<Client> = (0..2).map(|_| Client::connect(handle.addr()).unwrap()).collect();
    assert!(wait_until(Duration::from_secs(10), || handle.counters().open_connections >= 2));

    // The third connection is refused with the typed capacity error (best
    // effort: the refusal may also surface as an immediate EOF).
    let mut over = Client::connect(handle.addr()).expect("tcp connect still accepted");
    over.set_deadline(Some(Duration::from_secs(10))).expect("deadline");
    match over.recv() {
        Ok(Response::Error(msg)) => assert_eq!(msg, CAPACITY_MSG),
        Ok(other) => panic!("expected capacity error, got {other:?}"),
        Err(_) => {} // closed before the refusal flushed — still refused
    }
    assert!(wait_until(Duration::from_secs(10), || handle.counters().rejected_at_capacity >= 1));

    // The connections under the cap still work.
    for (i, client) in keep.iter_mut().enumerate() {
        client.set_deadline(Some(Duration::from_secs(60))).expect("deadline");
        match client.query_text("anything", i as u64, 1).expect("query under cap") {
            Response::Ok(_) | Response::Error(_) => {}
        }
    }
    handle.shutdown();
}

#[test]
fn stalled_readers_are_disconnected_and_shutdown_stays_prompt() {
    use std::io::Write as _;

    let (corpus, model) = frozen_model();
    let config = ServerConfig {
        workers: 2,
        max_pending: 4096,
        write_stall_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&model), config).expect("bind loopback");
    let addr = handle.addr();

    // A client that sends requests and never reads a byte: its responses pile
    // up until they overrun the socket buffers, the write stalls, and the
    // server must disconnect it instead of wedging. Kernel socket buffering
    // is host-tuned (tens of MB on some hosts), so clamp this client's
    // receive buffer to keep the overrun cheap, and keep pumping bursts as a
    // backstop until the stall registers.
    let mut stalled = std::net::TcpStream::connect(addr).expect("connect");
    clamp_recv_buffer(&stalled);
    stalled.set_write_timeout(Some(Duration::from_millis(500))).expect("write timeout");
    let doc: Vec<u32> = queries(corpus.vocab_size(), 1).remove(0);
    let mut burst = Vec::new();
    for seed in 0..20_000u64 {
        warplda::serve::wire::encode_request(
            &Request { seed, top_n: 8, body: RequestBody::Tokens(doc.clone()) },
            &mut burst,
        );
    }
    let pump_deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < pump_deadline && handle.counters().stalled_disconnects == 0 {
        match stalled.write(&burst) {
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            // Reset by the server: the disconnect already happened.
            Err(_) => break,
        }
    }
    assert!(
        wait_until(Duration::from_secs(10), || handle.counters().stalled_disconnects >= 1),
        "stalled reader was not disconnected: {:?}",
        handle.counters()
    );

    // Active clients were never blocked by the stalled one.
    let mut active = Client::connect(addr).expect("connect");
    active.set_deadline(Some(Duration::from_secs(60))).expect("deadline");
    match active.query_tokens(&doc, 1, 2).expect("query") {
        Response::Ok(_) => {}
        Response::Error(e) => panic!("active client starved by a stalled reader: {e}"),
    }

    // Shutdown is prompt even with a fresh stalled reader attached — the
    // regression that motivated this PR: a worker stuck in write_all made
    // ServerHandle::shutdown (and Drop) hang indefinitely.
    let mut second = std::net::TcpStream::connect(addr).expect("connect");
    second.write_all(&burst).expect("burst");
    std::thread::sleep(Duration::from_millis(50)); // let responses queue
    let t0 = Instant::now();
    handle.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown with a stalled reader attached took {:?}",
        t0.elapsed()
    );
    drop(stalled);
    drop(second);
}

#[test]
fn client_deadline_turns_a_wedged_server_into_a_typed_timeout() {
    use warplda::serve::wire::WireError;

    // A listener that accepts and then never answers: without a deadline
    // recv() would hang forever (the old CI-timeout failure mode).
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let wedged = std::thread::spawn(move || {
        let (_stream, _) = listener.accept().expect("accept");
        std::thread::sleep(Duration::from_secs(2)); // hold the socket open, say nothing
    });

    let mut client =
        Client::connect_timeout(addr, Duration::from_millis(200)).expect("connect with timeout");
    client.send(&Request { seed: 1, top_n: 1, body: RequestBody::Tokens(vec![0]) }).expect("send");
    let t0 = Instant::now();
    match client.recv() {
        Err(WireError::Io(e)) => {
            assert!(
                matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
                "expected a timeout kind, got {e:?}"
            );
        }
        other => panic!("expected a typed timeout, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "deadline must bound recv, took {:?}",
        t0.elapsed()
    );
    wedged.join().expect("wedged listener thread");
}
