//! Pins the zero-allocation guarantees of the WarpLDA hot paths: training
//! iterations *and* serving-side fold-in inference.
//!
//! A counting global allocator tallies every heap operation of this test
//! binary. After a warm-up pass (which populates the count-vector pool's
//! capacity classes and grows the alias/scratch buffers to their high-water
//! marks), steady-state serial iterations must perform **zero** heap
//! allocations, parallel iterations must stay at a small constant (the
//! scoped-thread spawns) independent of corpus size, and steady-state
//! inference over a frozen model must be **zero allocations per request**.
//!
//! This file deliberately contains a single `#[test]`: the harness runs the
//! tests of one binary concurrently, so a second test would pollute the
//! global counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use warplda::prelude::*;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.load(Relaxed);
    f();
    ALLOC_CALLS.load(Relaxed) - before
}

#[test]
fn steady_state_iterations_do_not_allocate() {
    // K chosen above 2·L for both documents and most words, so the hash
    // count path (the one that used to allocate a fresh table per visit) is
    // exercised alongside the dense path.
    let params = ModelParams::new(100, 0.5, 0.05);
    let config = WarpLdaConfig::with_mh_steps(2);

    // --- Serial: strictly zero allocations after warm-up. ---
    for scale in [4usize, 1] {
        let corpus = DatasetPreset::Tiny.generate_scaled(scale);
        let mut sampler = WarpLda::new(&corpus, params, config, 7);
        for _ in 0..2 {
            sampler.run_iteration(); // warm-up: pool classes + buffer high-water
        }
        let allocs = allocs_during(|| {
            for _ in 0..3 {
                sampler.run_iteration();
            }
        });
        assert_eq!(
            allocs, 0,
            "serial WarpLDA must not allocate in steady state (corpus scale 1/{scale})"
        );
        // The iterations above must still be doing real work.
        assert_eq!(sampler.iterations(), 5);
    }

    // --- Parallel: worker scratch persists, so the only remaining
    // allocations are the scoped-thread spawns — a small constant that must
    // not grow with the corpus. ---
    let mut per_scale = Vec::new();
    for scale in [4usize, 1] {
        let corpus = DatasetPreset::Tiny.generate_scaled(scale);
        let mut sampler = ParallelWarpLda::new(&corpus, params, config, 7, 4);
        for _ in 0..2 {
            sampler.run_iteration();
        }
        let allocs = allocs_during(|| sampler.run_iteration());
        assert!(
            allocs <= 200,
            "parallel WarpLDA should only pay the thread spawns, got {allocs} allocations"
        );
        per_scale.push(allocs);
    }
    // 4x the tokens must not mean more allocations: the cost is per-spawn,
    // not per-token. Allow slack for the allocator's thread-stack caching.
    assert!(
        per_scale[1] <= per_scale[0] + 32,
        "parallel allocations grew with corpus size: {per_scale:?}"
    );

    // --- Serving: steady-state fold-in inference is zero allocations per
    // request. The first request grows the scratch (token assignments, c_d,
    // θ, top list) to its high-water mark; every later request — including
    // ones for different documents and seeds — reuses it. ---
    let corpus = DatasetPreset::Tiny.generate_scaled(2);
    let mut sampler = WarpLda::new(&corpus, params, config, 7);
    for _ in 0..3 {
        sampler.run_iteration();
    }
    let model = TopicModel::freeze_sampler(&sampler, &corpus);
    let engine = InferenceEngine::new(&model, InferConfig::default());
    let docs: Vec<Vec<u32>> = (0..8usize)
        .map(|i| (0..4 + i).map(|j| ((i * 31 + j * 7) % corpus.vocab_size()) as u32).collect())
        .collect();
    let mut scratch = InferScratch::new();
    // Warm-up on the *largest* request shapes so the buffers reach their
    // high-water marks.
    for (i, doc) in docs.iter().enumerate() {
        engine.infer_into(doc, i as u64, &mut scratch);
    }
    let allocs = allocs_during(|| {
        for round in 0..3u64 {
            for (i, doc) in docs.iter().enumerate() {
                engine.infer_into(doc, round * 100 + i as u64, &mut scratch);
            }
        }
    });
    assert_eq!(allocs, 0, "steady-state inference must not allocate per request");
    // The requests above did real work: θ is a fresh distribution.
    let total: f64 = scratch.theta().iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}
