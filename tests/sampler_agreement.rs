//! Cross-sampler agreement: every algorithm in the workspace — the exact ones
//! (CGS, SparseLDA, F+LDA), the MH ones (AliasLDA, LightLDA, WarpLDA) and the
//! Figure 7 ablation variants — must converge to essentially the same log
//! joint likelihood on the same corpus. This is the Section 6.3 claim ("the
//! MCEM solution of WarpLDA is very similar with the CGS solution").

use warplda::prelude::*;

fn corpus() -> Corpus {
    let mut cfg = SyntheticConfig {
        num_docs: 120,
        vocab_size: 300,
        mean_doc_len: 50,
        num_topics: 5,
        ..SyntheticConfig::default()
    };
    cfg.seed = 2016;
    LdaGenerator::new(cfg).generate()
}

fn final_ll(sampler: &mut dyn Sampler, corpus: &Corpus, iterations: usize) -> f64 {
    let trainer = Trainer::new(corpus);
    trainer.train(&TrainerConfig::new(iterations).eval_every(0), sampler.name(), sampler).final_ll()
}

#[test]
fn all_samplers_converge_to_similar_likelihood() {
    let corpus = corpus();
    let params = ModelParams::new(5, 0.5, 0.05);
    let iterations = 60;

    let mut samplers: Vec<(&str, Box<dyn Sampler>)> = vec![
        ("CGS", Box::new(CollapsedGibbs::new(&corpus, params, 1))),
        ("SparseLDA", Box::new(SparseLda::new(&corpus, params, 2))),
        ("AliasLDA", Box::new(AliasLda::new(&corpus, params, 3))),
        ("F+LDA", Box::new(FPlusLda::new(&corpus, params, 4))),
        ("LightLDA", Box::new(LightLda::new(&corpus, params, 4, 5))),
        ("WarpLDA", Box::new(WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(4), 6))),
    ];

    let mut results = Vec::new();
    for (name, sampler) in &mut samplers {
        let ll = final_ll(sampler.as_mut(), &corpus, iterations);
        assert!(ll.is_finite(), "{name} produced a non-finite likelihood");
        results.push((*name, ll));
    }

    let reference = results.iter().find(|(n, _)| *n == "CGS").unwrap().1;
    for &(name, ll) in &results {
        assert!(
            (ll - reference).abs() < 0.04 * reference.abs(),
            "{name} ({ll:.1}) should converge near CGS ({reference:.1}); all: {results:?}"
        );
    }
}

#[test]
fn figure7_ladder_variants_agree_with_warplda() {
    let corpus = corpus();
    let params = ModelParams::new(5, 0.5, 0.05);
    let iterations = 60;

    let mut lls = Vec::new();
    for variant in [
        LightLdaVariant::standard(),
        LightLdaVariant::delayed_word(),
        LightLdaVariant::delayed_word_doc(),
        LightLdaVariant::warp_like(),
    ] {
        let mut s = LightLda::with_variant(&corpus, params, 1, 9, variant);
        lls.push((variant.label(), final_ll(&mut s, &corpus, iterations)));
    }
    let mut warp = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(1), 9);
    lls.push(("WarpLDA", final_ll(&mut warp, &corpus, iterations)));

    let best = lls.iter().map(|&(_, l)| l).fold(f64::NEG_INFINITY, f64::max);
    let worst = lls.iter().map(|&(_, l)| l).fold(f64::INFINITY, f64::min);
    assert!(
        (best - worst).abs() < 0.05 * best.abs(),
        "the Figure 7 ladder should converge to similar likelihoods: {lls:?}"
    );
}

#[test]
fn more_mh_steps_converge_in_fewer_iterations() {
    // Figure 8: per iteration, larger M converges faster (or at least no slower).
    let corpus = corpus();
    let params = ModelParams::new(5, 0.5, 0.05);
    let budget = 12;

    let ll_for = |m: usize| {
        let mut s = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(m), 77);
        final_ll(&mut s, &corpus, budget)
    };
    let ll_m1 = ll_for(1);
    let ll_m8 = ll_for(8);
    assert!(
        ll_m8 >= ll_m1 - 0.01 * ll_m1.abs(),
        "after {budget} iterations M=8 ({ll_m8:.1}) should be at least as good as M=1 ({ll_m1:.1})"
    );
}
