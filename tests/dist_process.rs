//! Real multi-process distributed training, differentially tested against the
//! simulated cluster oracle.
//!
//! [`ProcessCluster`] spawns genuine `warplda-dist-worker` OS processes and
//! exchanges deltas over loopback TCP; the simulated
//! [`DistributedWarpLda`] and the in-process [`ParallelWarpLda`] advance the
//! same model without any wire. Because WarpLDA derives every phase's
//! randomness from per-entity RNG streams and merges partial `c_k` by
//! commutative integer sums, all three backends must agree **bit-for-bit**
//! after every iteration — assignments, global topic counts and therefore
//! perplexity. These tests enforce that, plus checkpoint resume across
//! changing worker counts and typed (non-hanging) failure on worker death.
//!
//! The fault-tolerance half drives the same differential argument through
//! scripted failures: a worker killed or hung mid-iteration is detected
//! (child exit / heartbeat silence), respawned from the coordinator's
//! boundary snapshot, and the retried iteration replays bit-identically —
//! so the *final* model after recovery equals the fault-free oracle's
//! exactly. With recovery disabled, the same faults surface as fast typed
//! errors, and a dropped cluster never leaves zombie worker processes.

use std::time::Duration;

use warplda::prelude::*;

fn process_config(workers: usize) -> ProcessClusterConfig {
    let mut cfg = ProcessClusterConfig::new(workers);
    // CI boxes are slow but a minute is still far beyond any healthy
    // exchange on a loopback socket.
    cfg.io_timeout = Duration::from_secs(60);
    cfg
}

/// Per-iteration differential run: multi-process vs. simulated vs. parallel.
fn assert_backends_agree(
    corpus: &Corpus,
    num_topics: usize,
    workers: usize,
    iters: u64,
    seed: u64,
) {
    let params = ModelParams::paper_defaults(num_topics);
    let config = WarpLdaConfig::with_mh_steps(2);
    let doc_view = DocMajorView::build(corpus);
    let word_view = WordMajorView::build(corpus, &doc_view);

    let mut cluster = ProcessCluster::new(corpus, params, config, seed, process_config(workers))
        .expect("spawn cluster");
    let mut simulated = DistributedWarpLda::new(
        corpus,
        params,
        config,
        ClusterConfig::tianhe2_like(workers, config.mh_steps),
        seed,
    );
    let mut parallel = ParallelWarpLda::new(corpus, params, config, seed, workers);

    for iter in 1..=iters {
        let report = cluster.run_iteration().expect("distributed iteration");
        assert_eq!(report.iteration, iter);
        simulated.run_iteration(corpus, false);
        parallel.run_iteration();

        let z = cluster.assignments();
        assert_eq!(z, simulated.assignments(), "iteration {iter}, {workers} workers: simulated");
        assert_eq!(z, parallel.assignments(), "iteration {iter}, {workers} workers: parallel");
        assert_eq!(
            cluster.topic_counts(),
            parallel.topic_counts(),
            "iteration {iter}, {workers} workers: c_k"
        );

        let ll = log_joint_likelihood(corpus, &doc_view, &word_view, &params, &z);
        let ll_parallel =
            log_joint_likelihood(corpus, &doc_view, &word_view, &params, &parallel.assignments());
        let ppl = perplexity_per_token(ll, corpus.num_tokens()).unwrap();
        let ppl_parallel = perplexity_per_token(ll_parallel, corpus.num_tokens()).unwrap();
        assert_eq!(
            ppl.to_bits(),
            ppl_parallel.to_bits(),
            "iteration {iter}, {workers} workers: perplexity bits"
        );
    }
    cluster.shutdown().expect("clean shutdown");
}

#[test]
fn multi_process_training_matches_the_oracles_on_tiny() {
    let corpus = DatasetPreset::Tiny.generate_scaled(2);
    for workers in [1usize, 2, 4] {
        assert_backends_agree(&corpus, 12, workers, 5, 41);
    }
}

#[test]
fn multi_process_training_matches_the_oracles_on_nytimes_like() {
    let corpus = DatasetPreset::NyTimesLike.generate_scaled(60);
    for workers in [2usize, 4] {
        assert_backends_agree(&corpus, 16, workers, 5, 97);
    }
}

#[test]
fn resume_from_checkpoint_is_bit_identical_across_worker_counts() {
    let corpus = DatasetPreset::Tiny.generate_scaled(2);
    let params = ModelParams::paper_defaults(10);
    let config = WarpLdaConfig::with_mh_steps(2);
    let seed = 23;
    let dir = std::env::temp_dir().join(format!("warplda-dist-resume-{}", std::process::id()));
    let path = dir.join("cluster.ckpt");

    // Train 3 iterations on 2 processes, checkpoint the coordinator replica.
    let mut first =
        ProcessCluster::new(&corpus, params, config, seed, process_config(2)).expect("spawn");
    for _ in 0..3 {
        first.run_iteration().expect("iteration");
    }
    save_checkpoint(first.sampler(), None, &path).expect("save checkpoint");
    first.shutdown().expect("shutdown");

    // Resume on 4 processes for 3 more iterations.
    let mut resumed = ShardedWarpLda::new(&corpus, params, config, seed);
    load_checkpoint(&mut resumed, &path).expect("load checkpoint");
    assert_eq!(resumed.iterations(), 3);
    let mut second =
        ProcessCluster::from_sampler(&corpus, resumed, process_config(4)).expect("respawn");
    for _ in 0..3 {
        second.run_iteration().expect("iteration");
    }

    // The uninterrupted single-machine run is the oracle for the whole span.
    let mut oracle = ParallelWarpLda::new(&corpus, params, config, seed, 2);
    for _ in 0..6 {
        oracle.run_iteration();
    }
    assert_eq!(second.assignments(), oracle.assignments());
    assert_eq!(second.topic_counts(), oracle.topic_counts());
    second.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_surfaces_as_a_typed_error_not_a_hang() {
    let corpus = DatasetPreset::Tiny.generate_scaled(2);
    let params = ModelParams::paper_defaults(8);
    let config = WarpLdaConfig::with_mh_steps(2);
    let mut cfg = process_config(2);
    // Tight bound: the error must arrive fast, not after a long timeout.
    cfg.io_timeout = Duration::from_secs(10);
    // Recovery off: this test asserts the *typed error* path.
    cfg.max_recoveries = 0;
    let mut cluster = ProcessCluster::new(&corpus, params, config, 7, cfg).expect("spawn");
    cluster.run_iteration().expect("healthy iteration");

    cluster.kill_worker(1);
    let start = std::time::Instant::now();
    let err = cluster.run_iteration().expect_err("iteration with a dead worker must fail");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "failure took {:?} — the coordinator hung instead of failing fast",
        start.elapsed()
    );
    match err {
        DistError::WorkerFailed { worker, .. } => assert_eq!(worker, 1),
        other => panic!("expected WorkerFailed, got {other}"),
    }
}

/// Runs `iters` iterations under `plan`, asserting that every scripted fault
/// auto-recovers and that the final model — assignments, `c_k`, perplexity —
/// is bit-identical to a fault-free [`ParallelWarpLda`] run of the same seed.
fn assert_recovery_is_bit_identical(
    workers: usize,
    plan: FaultPlan,
    iters: u64,
    expected_recoveries: u64,
) {
    let corpus = DatasetPreset::Tiny.generate_scaled(2);
    let params = ModelParams::paper_defaults(10);
    let config = WarpLdaConfig::with_mh_steps(2);
    let seed = 71;
    let doc_view = DocMajorView::build(&corpus);
    let word_view = WordMajorView::build(&corpus, &doc_view);

    let mut cfg = process_config(workers);
    // Keep hang detection quick so the hang tests don't dominate the suite.
    cfg.liveness_timeout = Duration::from_secs(2);
    cfg.heartbeat_interval = Duration::from_millis(100);
    cfg.fault_plan = plan;
    let mut cluster =
        ProcessCluster::new(&corpus, params, config, seed, cfg).expect("spawn cluster");
    let mut oracle = ParallelWarpLda::new(&corpus, params, config, seed, workers);
    let mut recoveries_seen = 0u64;
    for _ in 0..iters {
        let report = cluster.run_iteration().expect("iteration must survive scripted faults");
        recoveries_seen += u64::from(report.recoveries);
        oracle.run_iteration();
    }
    assert_eq!(cluster.recoveries(), expected_recoveries, "{workers} workers: recovery counter");
    assert_eq!(recoveries_seen, expected_recoveries, "{workers} workers: per-report counters");

    let z = cluster.assignments();
    assert_eq!(z, oracle.assignments(), "{workers} workers: assignments after recovery");
    assert_eq!(cluster.topic_counts(), oracle.topic_counts(), "{workers} workers: c_k");
    let ll = log_joint_likelihood(&corpus, &doc_view, &word_view, &params, &z);
    let ll_oracle =
        log_joint_likelihood(&corpus, &doc_view, &word_view, &params, &oracle.assignments());
    let ppl = perplexity_per_token(ll, corpus.num_tokens()).unwrap();
    let ppl_oracle = perplexity_per_token(ll_oracle, corpus.num_tokens()).unwrap();
    assert_eq!(ppl.to_bits(), ppl_oracle.to_bits(), "{workers} workers: perplexity bits");
    cluster.shutdown().expect("clean shutdown after recovery");
}

#[test]
fn killed_worker_recovers_bit_identically() {
    for workers in [2usize, 4] {
        // Worker 1 exits abruptly at the start of iteration 2's word phase.
        let plan = FaultPlan::new().crash(1, 2, FaultPhase::Word);
        assert_recovery_is_bit_identical(workers, plan, 4, 1);
    }
}

#[test]
fn hung_worker_is_detected_by_heartbeat_timeout_and_recovers_bit_identically() {
    for workers in [2usize, 4] {
        // Worker 0 stops heartbeating and stalls mid-iteration-3; the stall
        // far outlives the liveness timeout, so only heartbeat-based
        // detection (not a child-exit check) can catch it.
        let plan = FaultPlan::new().hang(0, 3, FaultPhase::Doc, 600_000);
        assert_recovery_is_bit_identical(workers, plan, 4, 1);
    }
}

#[test]
fn corrupt_and_truncated_deltas_trigger_recovery() {
    // Worker 1 flips bits in its iteration-2 word delta (a typed decode
    // failure on the coordinator), and worker 0 truncates its iteration-3
    // doc delta mid-frame then exits. Both recover; the final model is
    // still exact.
    let plan = FaultPlan::new().corrupt_delta(1, 2, FaultPhase::Word).truncate_delta(
        0,
        3,
        FaultPhase::Doc,
    );
    assert_recovery_is_bit_identical(2, plan, 4, 2);
}

#[test]
fn delayed_but_heartbeating_worker_is_not_declared_hung() {
    // Worker 1 stalls for 3 s — longer than the 1 s liveness timeout — but
    // keeps heartbeating. A correct supervisor rides it out: no recovery.
    let corpus = DatasetPreset::Tiny.generate_scaled(2);
    let params = ModelParams::paper_defaults(8);
    let config = WarpLdaConfig::with_mh_steps(2);
    let mut cfg = process_config(2);
    cfg.liveness_timeout = Duration::from_secs(1);
    cfg.heartbeat_interval = Duration::from_millis(100);
    cfg.fault_plan = FaultPlan::new().delay(1, 2, FaultPhase::Word, 3_000);
    let mut cluster = ProcessCluster::new(&corpus, params, config, 5, cfg).expect("spawn");
    let mut oracle = ParallelWarpLda::new(&corpus, params, config, 5, 2);
    for _ in 0..3 {
        cluster.run_iteration().expect("a slow worker is not a dead worker");
        oracle.run_iteration();
    }
    assert_eq!(cluster.recoveries(), 0, "a heartbeating worker must never be recovered");
    assert_eq!(cluster.assignments(), oracle.assignments());
    cluster.shutdown().expect("clean shutdown");
}

#[test]
fn hung_worker_with_recovery_disabled_is_a_typed_hang_error() {
    let corpus = DatasetPreset::Tiny.generate_scaled(2);
    let params = ModelParams::paper_defaults(8);
    let config = WarpLdaConfig::with_mh_steps(2);
    let mut cfg = process_config(2);
    cfg.max_recoveries = 0;
    cfg.liveness_timeout = Duration::from_secs(1);
    cfg.heartbeat_interval = Duration::from_millis(100);
    cfg.fault_plan = FaultPlan::new().hang(1, 1, FaultPhase::Doc, 600_000);
    let mut cluster = ProcessCluster::new(&corpus, params, config, 9, cfg).expect("spawn");

    let start = std::time::Instant::now();
    let err = cluster.run_iteration().expect_err("hang with recovery disabled must fail");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "hang detection took {:?} — liveness is not working",
        start.elapsed()
    );
    match err {
        DistError::WorkerHung { worker, .. } => assert_eq!(worker, 1),
        other => panic!("expected WorkerHung, got {other}"),
    }

    // Satellite check: dropping the cluster mid-iteration (worker 1 is
    // alive-but-hung, worker 0 is blocked awaiting a sync) kills and reaps
    // every child — no zombies, no orphans.
    let pids = cluster.worker_pids();
    assert_eq!(pids.len(), 2);
    drop(cluster);
    for pid in pids {
        assert!(
            !process_is_live_or_zombie(pid),
            "worker pid {pid} still present after the cluster was dropped"
        );
    }
}

/// True when `/proc/<pid>` still names a live or zombie `warplda-dist-worker`
/// process. PID recycling is handled by checking the command name.
fn process_is_live_or_zombie(pid: u32) -> bool {
    match std::fs::read_to_string(format!("/proc/{pid}/comm")) {
        Ok(comm) => comm.trim_end().starts_with("warplda-dist-w"),
        Err(_) => false,
    }
}

#[test]
fn malformed_delta_payloads_are_rejected_with_typed_codec_errors() {
    use warplda::corpus::io::codec::CodecError;
    use warplda::dist::protocol::{decode_message, encode_message, Delta, Message};

    let delta = Message::WordDelta(Delta {
        worker_id: 0,
        epoch: 1,
        records: vec![1, 2, 3],
        partial_ck: vec![4, 5],
    });
    let mut bytes = encode_message(&delta);
    // Truncating the payload mid-vector must be a typed decode error.
    bytes.truncate(bytes.len() - 3);
    assert!(decode_message(&bytes).is_err());

    // Unknown message tag.
    let mut unknown = encode_message(&Message::Shutdown);
    unknown[0] = 0xEE;
    match decode_message(&unknown) {
        Err(CodecError::Corrupt(msg)) => assert!(msg.contains("tag"), "unexpected: {msg}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // A structurally valid delta whose records don't match the plan's entry
    // list (wrong length / out-of-range topic) is rejected by the replica.
    let corpus = DatasetPreset::Tiny.generate_scaled(2);
    let mut sampler =
        ShardedWarpLda::new(&corpus, ModelParams::paper_defaults(6), WarpLdaConfig::default(), 3);
    let entries = [0u32, 1];
    assert!(sampler.import_records(&entries, &[0u32; 5]).is_err(), "wrong length");
    let bad_topic = vec![6u32; 2 * (WarpLdaConfig::default().mh_steps + 1)];
    assert!(sampler.import_records(&entries, &bad_topic).is_err(), "topic out of range");
}

#[test]
fn truncated_frames_and_oversized_prefixes_are_typed_wire_errors() {
    use warplda::net::{FrameBuffer, WireError};

    // A frame cut mid-payload is Malformed, not a hang or a panic.
    let mut buf = FrameBuffer::new(64);
    let mut frame = 8u32.to_le_bytes().to_vec();
    frame.extend_from_slice(&[1, 2, 3]); // promises 8 bytes, delivers 3
    let mut cursor = std::io::Cursor::new(frame);
    match buf.read_frame(&mut cursor) {
        Err(WireError::Malformed(msg)) => assert!(msg.contains("mid-frame")),
        other => panic!("expected Malformed, got {other:?}"),
    }

    // An oversized length prefix is rejected before any buffering.
    let mut buf = FrameBuffer::with_max_frame(64, 1024);
    let huge = (u32::MAX).to_le_bytes();
    let mut cursor = std::io::Cursor::new(huge.to_vec());
    match buf.read_frame(&mut cursor) {
        Err(WireError::FrameTooLarge { len, limit }) => {
            assert_eq!(len, u32::MAX);
            assert_eq!(limit, 1024);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}
