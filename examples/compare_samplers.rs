//! Convergence comparison of every sampler in the workspace — a miniature
//! version of Figure 5 of the paper that runs in seconds.
//!
//! Prints, for each sampler, the log joint likelihood over iterations and the
//! wall-clock time per iteration, so the trade-off the paper discusses (MH
//! samplers need more iterations but each is far cheaper) is visible directly.
//! Every run goes through the unified [`Trainer`] pipeline; the likelihoods
//! are computed overlapped with sampling on a background worker.
//!
//! ```bash
//! cargo run --release --example compare_samplers
//! ```

use warplda::prelude::*;

fn main() {
    let corpus = DatasetPreset::Tiny.generate();
    let params = ModelParams::paper_defaults(20);
    let iterations = 30;
    println!("corpus: {}", corpus.stats().table_row("tiny-synthetic"));
    println!("K = {}, alpha = {:.3}, beta = {}\n", params.num_topics, params.alpha, params.beta);

    // Each entry: (name, boxed sampler).
    let mut samplers: Vec<(String, Box<dyn Sampler>)> = vec![
        ("CGS".into(), Box::new(CollapsedGibbs::new(&corpus, params, 1))),
        ("SparseLDA".into(), Box::new(SparseLda::new(&corpus, params, 1))),
        ("AliasLDA".into(), Box::new(AliasLda::new(&corpus, params, 1))),
        ("F+LDA".into(), Box::new(FPlusLda::new(&corpus, params, 1))),
        ("LightLDA (M=4)".into(), Box::new(LightLda::new(&corpus, params, 4, 1))),
        (
            "WarpLDA (M=2)".into(),
            Box::new(WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(2), 1)),
        ),
    ];

    let trainer = Trainer::new(&corpus);
    let schedule = TrainerConfig::new(iterations).eval_every(1);
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>12}",
        "sampler",
        "LL@1",
        "LL@10",
        &format!("LL@{iterations}"),
        "ms/iter"
    );
    for (name, sampler) in &mut samplers {
        let log = trainer.train(&schedule, name, sampler.as_mut());
        let ms_per_iter = log.total_seconds() * 1000.0 / iterations as f64;
        println!(
            "{:<16} {:>14.1} {:>14.1} {:>14.1} {:>12.2}",
            name,
            log.likelihood_at(1).unwrap(),
            log.likelihood_at(10).unwrap(),
            log.likelihood_at(iterations as u64).unwrap(),
            ms_per_iter
        );
    }

    println!(
        "\nAll samplers should converge to a similar final likelihood; the MH-based\n\
         samplers (LightLDA, WarpLDA) trade a few extra iterations for much cheaper\n\
         per-token work, which is the trade the paper exploits at scale."
    );
}
