//! End-to-end serving demo: train a tiny model, freeze it to a `WLDAMODL`
//! artifact, serve it over loopback TCP, query unseen documents, hot-swap
//! the model, and emit a latency report in the bench JSON schema.
//!
//! ```bash
//! cargo run --release --example serving_demo -- --out target/serving_demo.json
//! ```
//!
//! CI runs exactly that and then schema-validates the report with
//! `perf_report --validate-latency target/serving_demo.json`.

use std::sync::Arc;

use warplda::prelude::*;
use warplda::serve::wire::Response;
use warplda_bench::json::Json;
use warplda_bench::latency::LatencySummary;

/// Three planted themes; the model should recover one topic per theme.
fn training_corpus() -> Corpus {
    let mut b = CorpusBuilder::new();
    for _ in 0..60 {
        b.push_text_doc(["river", "lake", "water", "fish", "boat", "river", "stream"]);
        b.push_text_doc(["desert", "sand", "dune", "cactus", "heat", "desert", "sun"]);
        b.push_text_doc(["code", "bug", "compile", "test", "code", "debug", "patch"]);
    }
    b.build().expect("build corpus")
}

/// Unseen documents — none of these exact documents occur in training, and
/// some words ("swim", "scorching", "segfault") are out of vocabulary.
const QUERIES: [&str; 6] = [
    "fish swim in the cold river water",
    "a boat on the lake in a quiet stream",
    "scorching desert heat over the sand dunes",
    "a cactus in the sun baked sand",
    "the compile step hit a segfault bug in the test",
    "debug the patch before you compile the code",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "target/serving_demo.json".to_string());

    // 1. Train.
    let corpus = training_corpus();
    let params = ModelParams::paper_defaults(3);
    let trainer = Trainer::new(&corpus);
    let mut sampler = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(4), 42);
    let log = trainer.train(&TrainerConfig::new(60).eval_every(20), "serving-demo", &mut sampler);
    println!("trained 60 iterations, final log-likelihood {:.1}", log.final_ll());

    // 2. Freeze and persist the serving artifact, then reload it — queries
    //    run against the *loaded* model, proving the WLDAMODL round trip.
    let model_path = std::path::PathBuf::from("target/serving_demo.model");
    TopicModel::freeze_sampler(&sampler, &corpus).save(&model_path).expect("save model");
    let model = Arc::new(TopicModel::load(&model_path).expect("load model"));
    println!("frozen model: {} topics, {} words -> {}", 3, model.num_words(), model_path.display());

    // 3. Serve on loopback with two workers and query from three concurrent
    //    client threads (OOV words are dropped and counted).
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&model), ServerConfig::with_workers(2))
        .expect("bind loopback");
    let addr = handle.addr();
    println!("serving on {addr} with 2 workers");
    std::thread::scope(|scope| {
        for c in 0..3u64 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..40u64 {
                    let q = QUERIES[((c * 40 + round) % QUERIES.len() as u64) as usize];
                    let seed = c * 1_000 + round;
                    match client.query_text(q, seed, 2).expect("query") {
                        Response::Ok(_) => {}
                        Response::Error(e) => panic!("server rejected {q:?}: {e}"),
                    }
                }
            });
        }
    });

    // 4. Show what the model says about each unseen document.
    let vocab = model.vocab().expect("model embeds the vocabulary");
    let tops = model.top_words(3);
    let mut client = Client::connect(addr).expect("connect");
    for (i, q) in QUERIES.iter().enumerate() {
        let Response::Ok(reply) = client.query_text(q, i as u64, 1).expect("query") else {
            panic!("query rejected")
        };
        let (topic, weight) = reply.top[0];
        let words: Vec<&str> =
            tops[topic as usize].iter().map(|&(w, _)| vocab.word(w).unwrap_or("?")).collect();
        println!(
            "  {q:?}\n    -> topic {topic} (θ = {weight:.2}, {} OOV dropped): {}",
            reply.oov_dropped,
            words.join(" ")
        );
    }

    // 5. Hot swap: re-freeze the (further trained) sampler and promote it
    //    without restarting the server or dropping the open connection.
    for _ in 0..10 {
        sampler.run_iteration();
    }
    handle.swap_model(Arc::new(TopicModel::freeze_sampler(&sampler, &corpus)));
    let Response::Ok(reply) = client.query_text(QUERIES[0], 7, 1).expect("query") else {
        panic!("query rejected after swap")
    };
    println!("hot-swapped model; same connection now serves epoch {}", reply.model_epoch);
    assert_eq!(reply.model_epoch, 1, "swap must be visible");

    // 6. Emit the latency report in the bench JSON schema.
    let stats = handle.latency();
    println!(
        "latency over {} requests: p50 {}µs, p95 {}µs, p99 {}µs, max {}µs",
        stats.count, stats.p50_us, stats.p95_us, stats.p99_us, stats.max_us
    );
    let summary = LatencySummary {
        count: stats.count,
        mean_us: stats.mean_us,
        p50_us: stats.p50_us,
        p95_us: stats.p95_us,
        p99_us: stats.p99_us,
        max_us: stats.max_us,
    };
    let mut report = Json::obj();
    report.set("schema", Json::Str("warplda-serve-report/1".into()));
    report.set("workers", Json::Num(2.0));
    report.set("queries", Json::Num(stats.count as f64));
    report.set("model_epoch", Json::Num(handle.model_epoch() as f64));
    report.set("latency", summary.to_json());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    warplda::corpus::io::atomic_write_bytes(std::path::Path::new(&out), report.render().as_bytes())
        .expect("write serve report");
    println!("wrote {out}");
    handle.shutdown();
}
