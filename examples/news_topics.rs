//! Topic discovery on a small hand-written "news wire": documents from three
//! desks (sports, technology, finance) are mixed together and WarpLDA has to
//! pull the desks apart without being told which is which.
//!
//! This mirrors the motivating use of LDA in the paper's introduction
//! (text analysis / document organization) on data small enough to read.
//! After training (through the unified [`Trainer`]), the learned model is
//! saved as a binary state snapshot — assignments plus vocabulary — and read
//! back, demonstrating the model exchange format.
//!
//! ```bash
//! cargo run --release --example news_topics
//! ```

use warplda::corpus::io::{tokenize_text, DEFAULT_STOP_WORDS};
use warplda::lda::checkpoint::{read_state_snapshot, write_state_snapshot};
use warplda::prelude::*;

/// Three desks, a handful of headline-like documents each. Every document is
/// repeated a few times so the counts are strong enough for a clean split.
const SPORTS: &[&str] = &[
    "The home team scored a late goal to win the championship match",
    "Star striker injured ahead of the cup final against the rival team",
    "Coach praises goalkeeper after penalty shootout victory in the league",
    "Marathon record broken as runner sprints the final kilometre",
];
const TECH: &[&str] = &[
    "New smartphone chip promises faster neural network inference on device",
    "Open source database release improves cache efficiency and query latency",
    "Cloud provider launches GPU cluster for training large language models",
    "Researchers publish cache efficient sampling algorithm for topic models",
];
const FINANCE: &[&str] = &[
    "Central bank raises interest rates as inflation pressures the market",
    "Stock index falls while bond yields climb after the earnings report",
    "Investors rotate into value shares as the currency weakens against the dollar",
    "Quarterly earnings beat forecasts sending the share price higher",
];

fn main() {
    // Build the corpus: tokenize, lower-case, drop stop words.
    let mut builder = CorpusBuilder::new();
    let mut desk_of_doc = Vec::new();
    for _repeat in 0..8 {
        for (desk, docs) in [(0usize, SPORTS), (1, TECH), (2, FINANCE)] {
            for text in docs {
                let tokens = tokenize_text(text, DEFAULT_STOP_WORDS);
                builder.push_text_doc(tokens.iter().map(String::as_str));
                desk_of_doc.push(desk);
            }
        }
    }
    let corpus = builder.build().expect("corpus builds");
    println!("corpus: {}", corpus.stats().table_row("news-wire"));

    // Train a 3-topic model through the unified pipeline (no evaluation
    // needed — the corpus is tiny and we only want the final model).
    let params = ModelParams::new(3, 0.5, 0.05);
    let mut sampler = WarpLda::new(&corpus, params, WarpLdaConfig::with_mh_steps(4), 2024);
    let trainer = Trainer::new(&corpus);
    trainer.train(&TrainerConfig::sampling_only(120), "news", &mut sampler);

    // Save the trained model (assignments + vocabulary) as a binary snapshot
    // and read it back — the exchange format for downstream consumers.
    let state = sampler.snapshot_state(&corpus, trainer.doc_view(), trainer.word_view());
    let mut snapshot = Vec::new();
    write_state_snapshot(&state, Some(corpus.vocab()), &mut snapshot).expect("snapshot writes");
    let (state, vocab) =
        read_state_snapshot(&mut snapshot.as_slice(), trainer.doc_view(), trainer.word_view())
            .expect("snapshot reads back");
    println!(
        "model snapshot: {} bytes on disk, vocabulary of {} words embedded",
        snapshot.len(),
        vocab.expect("vocab was embedded").len()
    );

    // Show the topics from the reloaded model.
    println!("\ndiscovered topics:");
    print!("{}", format_topics(&corpus, &state, 6));

    // Check how well topics align with desks: majority topic per desk.
    let z = state.assignments();
    let mut votes = [[0u32; 3]; 3];
    for (d, &desk) in desk_of_doc.iter().enumerate() {
        for i in trainer.doc_view().doc_range(d as u32) {
            votes[desk][z[i] as usize] += 1;
        }
    }
    println!("\ndesk → topic vote matrix (rows: sports, tech, finance):");
    for (desk, row) in votes.iter().enumerate() {
        let total: u32 = row.iter().sum();
        let best = row.iter().enumerate().max_by_key(|&(_, &v)| v).map(|(t, _)| t).unwrap();
        println!(
            "  desk {desk}: {row:?}  → dominant topic {best} ({}%)",
            100 * row[best] / total.max(1)
        );
    }
}
