//! Quickstart: train WarpLDA on a small synthetic corpus through the unified
//! [`Trainer`] pipeline, checkpoint the run, resume it, and print the topics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use warplda::prelude::*;

fn main() {
    // 1. Get a corpus. Here we generate one from the LDA generative model so
    //    there are planted topics to recover; swap in
    //    `warplda::corpus::io::read_uci_bag_of_words` to train on the real
    //    NYTimes/PubMed files if you have them.
    let corpus = DatasetPreset::Tiny.generate();
    let stats = corpus.stats();
    println!("corpus: {}", stats.table_row("tiny-synthetic"));

    // 2. Configure the model. The paper uses alpha = 50/K and beta = 0.01.
    let num_topics = 10;
    let params = ModelParams::paper_defaults(num_topics);
    let config = WarpLdaConfig::with_mh_steps(2);

    // 3. Train through the Trainer: 50 iterations, likelihood every 10
    //    (computed on a background worker, overlapped with sampling), and a
    //    checkpoint every 25 iterations.
    let ckpt_dir = std::path::PathBuf::from("target/quickstart-checkpoints");
    let trainer = Trainer::new(&corpus);
    let schedule = TrainerConfig::new(50).eval_every(10).checkpoint_into(&ckpt_dir, 25);
    let mut sampler = WarpLda::new(&corpus, params, config, 42);
    let outcome = trainer
        .train_checkpointed(&schedule, "quickstart", &mut sampler, Some(corpus.vocab()))
        .expect("training with checkpoints succeeds");
    for p in outcome.log.eval_points() {
        let ppl = perplexity_per_token(p.log_likelihood.unwrap(), corpus.num_tokens())
            .expect("corpus is not empty");
        println!(
            "iteration {:>3}: log-likelihood {:.1}, perplexity/token {ppl:.1}",
            p.iteration,
            p.log_likelihood.unwrap()
        );
    }
    println!(
        "mean sampling throughput: {:.2} Mtoken/s; checkpoints: {:?}",
        outcome.log.mean_tokens_per_sec() / 1e6,
        outcome.checkpoints
    );

    // 4. Resume from the mid-run checkpoint: load it into a *fresh* sampler
    //    and continue the remaining 25 iterations. The result is
    //    bit-identical to the uninterrupted 50-iteration run above.
    let midpoint = &outcome.checkpoints[0];
    let mut resumed = WarpLda::new(&corpus, params, config, 42);
    trainer
        .resume(
            &TrainerConfig::new(25).eval_every(25),
            "quickstart-resume",
            &mut resumed,
            midpoint,
            None, // checkpoints of the resumed run reuse the embedded vocabulary
        )
        .expect("resume succeeds");
    assert_eq!(resumed.assignments(), sampler.assignments(), "resume is bit-identical");
    println!("\nresumed from {} and reproduced the run bit-for-bit", midpoint.display());

    // 5. Inspect the learned topics.
    let state = sampler.snapshot_state(&corpus, trainer.doc_view(), trainer.word_view());
    println!("\ntop words per topic:");
    print!("{}", format_topics(&corpus, &state, 8));
}
