//! Quickstart: train WarpLDA on a small synthetic corpus and print the topics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use warplda::prelude::*;

fn main() {
    // 1. Get a corpus. Here we generate one from the LDA generative model so
    //    there are planted topics to recover; swap in
    //    `warplda::corpus::io::read_uci_bag_of_words` to train on the real
    //    NYTimes/PubMed files if you have them.
    let corpus = DatasetPreset::Tiny.generate();
    let stats = corpus.stats();
    println!("corpus: {}", stats.table_row("tiny-synthetic"));

    // 2. Configure the model. The paper uses alpha = 50/K and beta = 0.01.
    let num_topics = 10;
    let params = ModelParams::paper_defaults(num_topics);
    let config = WarpLdaConfig::with_mh_steps(2);

    // 3. Train.
    let doc_view = DocMajorView::build(&corpus);
    let word_view = WordMajorView::build(&corpus, &doc_view);
    let mut sampler = WarpLda::new(&corpus, params, config, 42);
    for iteration in 1..=50 {
        sampler.run_iteration();
        if iteration % 10 == 0 {
            let ll = sampler.log_likelihood(&corpus, &doc_view, &word_view);
            let ppl = perplexity_per_token(ll, corpus.num_tokens());
            println!("iteration {iteration:>3}: log-likelihood {ll:.1}, perplexity/token {ppl:.1}");
        }
    }

    // 4. Inspect the learned topics.
    let state = sampler.snapshot_state(&corpus, &doc_view, &word_view);
    println!("\ntop words per topic:");
    print!("{}", format_topics(&corpus, &state, 8));
}
