//! Distributed WarpLDA on the simulated cluster: partition balance,
//! communication volume and the modelled speedup curve (a miniature of
//! Figures 6 and 9b). The per-iteration history flows through the same
//! [`IterationLog`] pipeline as single-machine training.
//!
//! With `--process`, the same corpus is additionally trained on a **real**
//! 2-process cluster (`warplda-dist-worker` children over loopback TCP) and
//! checked bit-for-bit against the simulated run. The worker binary must be
//! built first: `cargo build --release -p warplda-dist`.
//!
//! With `--fault-smoke`, a 4-process cluster is trained under a scripted
//! fault plan — one worker killed outright, another hung mid-iteration — and
//! the run must recover both and still finish bit-identical to the fault-free
//! in-process oracle. CI runs this as the fault-injection smoke test.
//!
//! ```bash
//! cargo run --release --example distributed_run
//! cargo run --release --example distributed_run -- --process
//! cargo run --release --example distributed_run -- --fault-smoke
//! ```

use std::time::Duration;

use warplda::dist::runner::scaling_sweep;
use warplda::prelude::*;

fn run_process_backend(corpus: &Corpus, params: ModelParams, config: WarpLdaConfig, seed: u64) {
    let workers = 2;
    let iterations = 5;
    println!("\nreal {workers}-process cluster (loopback TCP):");
    let mut cluster =
        ProcessCluster::new(corpus, params, config, seed, ProcessClusterConfig::new(workers))
            .unwrap_or_else(|e| {
                eprintln!("cannot spawn the process cluster: {e}");
                std::process::exit(1);
            });
    let mut simulated = DistributedWarpLda::new(
        corpus,
        params,
        config,
        ClusterConfig::tianhe2_like(workers, config.mh_steps),
        seed,
    );
    println!("{:<6} {:>14} {:>14}", "iter", "Mtokens/s", "wire KB");
    for _ in 0..iterations {
        let report = cluster.run_iteration().unwrap_or_else(|e| {
            eprintln!("distributed iteration failed: {e}");
            std::process::exit(1);
        });
        simulated.run_iteration(corpus, false);
        println!(
            "{:<6} {:>14.2} {:>14.1}",
            report.iteration,
            corpus.num_tokens() as f64 / report.wall_sec.max(1e-12) / 1e6,
            report.bytes_exchanged as f64 / 1e3,
        );
    }
    assert_eq!(
        cluster.assignments(),
        simulated.assignments(),
        "multi-process training diverged from the simulated oracle"
    );
    println!(
        "after {iterations} iterations the multi-process assignments are bit-identical \
         to the simulated cluster's"
    );
    cluster.shutdown().unwrap_or_else(|e| {
        eprintln!("shutdown failed: {e}");
        std::process::exit(1);
    });
}

/// Fault-injection smoke test: kill one worker, hang another, and demand a
/// final model bit-identical to a run that never saw a fault.
fn run_fault_smoke(corpus: &Corpus, config: WarpLdaConfig, seed: u64) {
    let workers = 4;
    let iterations = 6;
    let params = ModelParams::paper_defaults(20);
    println!("\nfault-injection smoke: {workers}-process cluster, {iterations} iterations");
    println!("  scripted: worker 1 killed in iteration 2 (word phase),");
    println!("            worker 0 hung in iteration 4 (doc phase, outlives liveness timeout)");

    let mut cfg = ProcessClusterConfig::new(workers);
    cfg.heartbeat_interval = Duration::from_millis(100);
    cfg.liveness_timeout = Duration::from_secs(2);
    cfg.fault_plan =
        FaultPlan::new().crash(1, 2, FaultPhase::Word).hang(0, 4, FaultPhase::Doc, 600_000);

    let mut cluster = ProcessCluster::new(corpus, params, config, seed, cfg).unwrap_or_else(|e| {
        eprintln!("cannot spawn the process cluster: {e}");
        std::process::exit(1);
    });
    let mut oracle = ParallelWarpLda::new(corpus, params, config, seed, workers);
    for _ in 0..iterations {
        let report = cluster.run_iteration().unwrap_or_else(|e| {
            eprintln!("iteration did not survive the scripted faults: {e}");
            std::process::exit(1);
        });
        oracle.run_iteration();
        let note = match report.recoveries {
            0 => String::new(),
            n => format!("   <- recovered {n} worker(s)"),
        };
        println!("  iteration {:>2} complete{note}", report.iteration);
    }

    assert_eq!(cluster.recoveries(), 2, "expected exactly two recoveries (one kill, one hang)");
    assert_eq!(
        cluster.assignments(),
        oracle.assignments(),
        "recovered training diverged from the fault-free oracle"
    );
    assert_eq!(cluster.topic_counts(), oracle.topic_counts(), "topic counts diverged");
    cluster.shutdown().unwrap_or_else(|e| {
        eprintln!("shutdown failed: {e}");
        std::process::exit(1);
    });
    println!("survived 1 kill + 1 hang; final assignments bit-identical to the fault-free oracle");
}

fn main() {
    let corpus = DatasetPreset::Tiny.generate();
    let params = ModelParams::paper_defaults(20);
    let config = WarpLdaConfig::with_mh_steps(2);
    println!("corpus: {}", corpus.stats().table_row("tiny-synthetic"));

    // --- Fault-injection smoke (opt-in, used by CI) -----------------------
    if std::env::args().any(|a| a == "--fault-smoke") {
        run_fault_smoke(&corpus, config, 7);
        return;
    }

    // --- One distributed run with 4 simulated machines -------------------
    let cluster = ClusterConfig::tianhe2_like(4, config.mh_steps);
    let mut driver = DistributedWarpLda::new(&corpus, params, config, cluster, 7);
    let grid = driver.grid();
    println!(
        "\n4-machine grid: doc-phase imbalance {:.4}, word-phase imbalance {:.4}, \
         {} of {} tokens cross the network per phase switch",
        grid.doc_phase_imbalance(),
        grid.word_phase_imbalance(),
        grid.tokens_exchanged_per_phase_switch(),
        grid.total_tokens(),
    );

    driver.run(&corpus, 10, 2);
    let log = driver.iteration_log("WarpLDA (4 machines)");
    println!(
        "\n{:<6} {:>16} {:>14} {:>12} {:>12}",
        "iter", "log-likelihood", "Mtokens/s", "compute ms", "comm ms"
    );
    for (record, report) in log.records().iter().zip(driver.reports()) {
        println!(
            "{:<6} {:>16} {:>14.2} {:>12.2} {:>12.3}",
            record.iteration,
            record.log_likelihood.map_or("-".to_string(), |l| format!("{l:.1}")),
            record.tokens_per_sec / 1e6,
            report.compute_sec * 1e3,
            report.comm_sec * 1e3,
        );
    }

    // --- Scaling sweep ----------------------------------------------------
    println!("\nscaling sweep (modelled throughput):");
    println!("{:<10} {:>14} {:>10}", "machines", "Mtokens/s", "speedup");
    for p in scaling_sweep(&corpus, params, config, &[1, 2, 4, 8], 3, 7) {
        println!("{:<10} {:>14.2} {:>10.2}", p.workers, p.tokens_per_sec / 1e6, p.speedup);
    }

    // --- Real multi-process backend (opt-in) ------------------------------
    if std::env::args().any(|a| a == "--process") {
        run_process_backend(&corpus, params, config, 7);
    }
}
